"""Streaming evaluation: the real-world deployment view.

The paper motivates its design with deployment constraints: models are
"trained once and then tested or applied on large, and often streaming,
sets of data" (Section VI-C3), at a legitimate:phishing ratio near 100:1
observed in real traffic.  This module simulates that regime: an
interleaved page stream at a configurable class ratio, consumed by a
trained detector (or full pipeline) with rolling-window quality metrics
and per-page latency tracking.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.corpus.datasets import Dataset
from repro.ml.metrics import binary_metrics


def interleave_stream(
    legitimate: Dataset,
    phishing: Dataset,
    legit_per_phish: float = 100.0,
    seed: int = 0,
    limit: int | None = None,
):
    """Yield labeled pages with ~``legit_per_phish`` legit per phish.

    Pages are sampled with replacement from each dataset so the stream
    can be longer than the corpora; deterministic given ``seed``.
    """
    if not len(legitimate) or not len(phishing):
        raise ValueError("both datasets must be non-empty")
    if legit_per_phish <= 0:
        raise ValueError(f"legit_per_phish must be > 0, got {legit_per_phish}")
    rng = np.random.default_rng(seed)
    phish_probability = 1.0 / (1.0 + legit_per_phish)
    produced = 0
    while limit is None or produced < limit:
        if rng.random() < phish_probability:
            yield phishing[int(rng.integers(len(phishing)))]
        else:
            yield legitimate[int(rng.integers(len(legitimate)))]
        produced += 1


@dataclass
class StreamReport:
    """Final report of one streaming run."""

    pages_processed: int
    overall: dict[str, float]
    window_fpr: list[float] = field(default_factory=list)
    window_recall: list[float] = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)

    def latency_percentile(self, percentile: float) -> float:
        """Per-page decision latency percentile in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms, percentile))


class StreamingEvaluator:
    """Feeds a page stream through a detector, tracking rolling quality.

    Parameters
    ----------
    detector:
        Trained :class:`~repro.core.detector.PhishingDetector` (anything
        exposing ``extractor``, ``threshold`` and ``predict_proba``).
    window:
        Rolling-window width (pages) for windowed FPR/recall series.
    clock:
        Zero-argument seconds callable; injected for deterministic tests.
    """

    def __init__(self, detector, window: int = 500, clock=None):
        if window < 10:
            raise ValueError(f"window must be >= 10, got {window}")
        self.detector = detector
        self.window = window
        self.clock = clock or time.perf_counter

    def run(self, stream) -> StreamReport:
        """Consume ``stream`` (iterable of labeled pages) to exhaustion."""
        y_true: list[int] = []
        y_pred: list[int] = []
        latencies: list[float] = []
        recent: deque[tuple[int, int]] = deque(maxlen=self.window)
        window_fpr: list[float] = []
        window_recall: list[float] = []

        for page in stream:
            started = self.clock()
            vector = self.detector.extractor.extract(page.snapshot)
            score = float(
                self.detector.predict_proba(vector.reshape(1, -1))[0]
            )
            latencies.append((self.clock() - started) * 1000.0)

            prediction = int(score >= self.detector.threshold)
            y_true.append(page.label)
            y_pred.append(prediction)
            recent.append((page.label, prediction))

            if len(recent) == self.window:
                labels = np.asarray([pair[0] for pair in recent])
                predictions = np.asarray([pair[1] for pair in recent])
                metrics = binary_metrics(labels, predictions)
                window_fpr.append(metrics.fpr)
                window_recall.append(
                    metrics.recall if labels.sum() else float("nan")
                )

        overall = binary_metrics(
            np.asarray(y_true), np.asarray(y_pred)
        ).as_dict()
        return StreamReport(
            pages_processed=len(y_true),
            overall=overall,
            window_fpr=window_fpr,
            window_recall=window_recall,
            latencies_ms=latencies,
        )
