"""The experiment runner: one method per paper table/figure.

:class:`Lab` builds the synthetic world once, caches feature matrices and
trained models, and exposes the experiments of Section VI:

=====================  =================================================
method                 paper artefact
=====================  =================================================
``table5_rows``        Table V   — dataset description
``table6_rows``        Table VI  — accuracy across six languages
``table7_rows``        Table VII / Fig. 2 — accuracy per feature set
``fig3_curves``        Fig. 3    — precision vs recall per language
``fig4_curves``        Fig. 4    — ROC per language
``fig5_curves``        Fig. 5    — ROC per feature set (CV + English)
``fig6_curve``         Fig. 6    — performance vs test-set scale
``table8_timing``      Table VIII — processing time per stage
``table9_target_id``   Table IX  — target identification success
``table10_rows``       Table X   — comparison with baselines
``sec6d_fp_filtering`` §VI-D     — false-positive filtering
``sec7_ip_recall``     §VII-B    — IP-URL limitation
``sec7_evasion``       §VII-C    — evasion techniques
=====================  =================================================

Scenario terminology follows the paper: *scenario1* is 5-fold
cross-validation on legTrain+phishTrain; *scenario2* trains on those
(oldest) sets and predicts on phishTest plus a per-language legitimate
test set.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.baselines import (
    BagOfWordsClassifier,
    CantinaClassifier,
    UrlLexicalClassifier,
)
from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.target import TargetIdentifier
from repro.corpus.datasets import CorpusConfig, Dataset, World, build_world
from repro.corpus.phishing import PhishingSiteGenerator
from repro.corpus.wordlists import LANGUAGES
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import binary_metrics, precision_recall_curve, roc_auc, roc_curve
from repro.ml.validation import cross_validate_scores
from repro.parallel import AnalysisCache, WorkerPool
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot

FEATURE_SETS = ("f1", "f2", "f3", "f4", "f5", "f1,5", "f2,3,4", "fall")


class _FoldDetectorFactory:
    """Picklable factory building one fresh detector per CV fold.

    Module-level (not a closure over the Lab) so the ``process`` pool
    backend can ship it to workers.  Cross-validation operates on
    precomputed feature matrices, so the detector's own extractor is
    never used and each fold builds a default one.
    """

    def __init__(
        self,
        feature_set: str,
        threshold: float,
        n_estimators: int,
        tree_method: str,
    ):
        self.feature_set = feature_set
        self.threshold = threshold
        self.n_estimators = n_estimators
        self.tree_method = tree_method

    def __call__(self) -> PhishingDetector:
        """Build a fresh, identically configured detector."""
        return PhishingDetector(
            feature_set=self.feature_set,
            threshold=self.threshold,
            n_estimators=self.n_estimators,
            tree_method=self.tree_method,
        )


class Lab:
    """Builds the world once; runs and caches every experiment.

    Parameters
    ----------
    config:
        Corpus sizes; defaults to the scaled-down Table V shape.
    threshold:
        Discrimination threshold (paper: 0.7).
    n_estimators:
        Boosting stages for every trained detector.
    ocr_error_rate:
        Character error rate of the simulated OCR.
    workers:
        Worker count for batch feature extraction, analysis and
        cross-validation folds; ``None`` or ``1`` keeps everything
        serial.  Parallel runs produce results bit-identical to serial
        runs (ordered pool maps, serial loads, schedule-independent
        fold seeds).
    pool_backend:
        Pool backend (``"thread"`` or ``"process"``) when ``workers``
        is set.  Threads share this Lab's analysis cache; processes
        work on copies of it.
    cache:
        Whether to memoize term distributions, pair matrices and feature
        vectors by snapshot content hash (default on).
    tree_method:
        Split-finding strategy for every trained detector:
        ``"presort"`` (default; bit-identical to ``"exact"`` but much
        faster), ``"exact"``, or the approximate ``"histogram"``.
    """

    def __init__(
        self,
        config: CorpusConfig | None = None,
        threshold: float = 0.7,
        n_estimators: int = 120,
        ocr_error_rate: float = 0.02,
        workers: int | None = None,
        pool_backend: str = "thread",
        cache: bool = True,
        tree_method: str = "presort",
    ):
        self.config = config or CorpusConfig()
        self.threshold = threshold
        self.n_estimators = n_estimators
        self.tree_method = tree_method
        self.world: World = build_world(self.config)
        self.cache: AnalysisCache | None = (
            AnalysisCache(max_entries=16384) if cache else None
        )
        self.extractor = FeatureExtractor(
            alexa=self.world.alexa, cache=self.cache
        )
        self.pool: WorkerPool | None = (
            WorkerPool(workers=workers, backend=pool_backend)
            if workers and workers > 1 else None
        )
        self.ocr = SimulatedOcr(error_rate=ocr_error_rate)
        self._features: dict[str, np.ndarray] = {}
        self._detectors: dict[str, PhishingDetector] = {}
        self._scenario1_cache: dict[tuple, tuple] = {}
        self._quality_ref = None

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> Dataset:
        """Dataset lookup by Table V name."""
        return self.world.dataset(name)

    def features(self, name: str) -> np.ndarray:
        """Cached full 212-column feature matrix of a dataset."""
        if name not in self._features:
            pages = self.world.dataset(name)
            self._features[name] = self.extractor.extract_many(
                (page.snapshot for page in pages), pool=self.pool
            )
        return self._features[name]

    def train_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Training features and labels (legTrain + phishTrain)."""
        X = np.vstack([self.features("legTrain"), self.features("phishTrain")])
        y = np.concatenate([
            self.dataset("legTrain").labels(),
            self.dataset("phishTrain").labels(),
        ])
        return X, y

    def detector(self, feature_set: str = "fall") -> PhishingDetector:
        """A detector trained on scenario2's training data (cached)."""
        if feature_set not in self._detectors:
            X, y = self.train_matrix()
            model = PhishingDetector(
                self.extractor,
                feature_set=feature_set,
                threshold=self.threshold,
                n_estimators=self.n_estimators,
                tree_method=self.tree_method,
            )
            model.fit(X, y)
            self._detectors[feature_set] = model
        return self._detectors[feature_set]

    def scenario2_scores(
        self, language: str, feature_set: str = "fall"
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(y_true, scores)`` for phishTest + one language test set."""
        X = np.vstack([self.features(language), self.features("phishTest")])
        y = np.concatenate([
            self.dataset(language).labels(),
            self.dataset("phishTest").labels(),
        ])
        return y, self.detector(feature_set).predict_proba(X)

    def scenario1_scores(
        self, feature_set: str = "fall", n_splits: int = 5
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pooled out-of-fold ``(y_true, scores)`` for scenario1 (CV).

        Cached per (feature_set, n_splits): Table VII and Fig. 5 share
        the same cross-validation runs.  Folds fan out over this Lab's
        worker pool when one is configured; results are identical to
        the serial run (the fold split is drawn before dispatch and the
        pool map preserves input order).
        """
        key = (feature_set, n_splits)
        if key in self._scenario1_cache:
            return self._scenario1_cache[key]
        X, y = self.train_matrix()
        factory = _FoldDetectorFactory(
            feature_set=feature_set,
            threshold=self.threshold,
            n_estimators=self.n_estimators,
            tree_method=self.tree_method,
        )
        result = cross_validate_scores(
            factory, X, y, n_splits=n_splits,
            random_state=self.config.seed, pool=self.pool,
        )
        self._scenario1_cache[key] = result
        return result

    def _metric_row(self, y: np.ndarray, scores: np.ndarray) -> dict[str, float]:
        metrics = binary_metrics(y, (scores >= self.threshold).astype(int))
        row = metrics.as_dict()
        row["auc"] = roc_auc(y, scores)
        return row

    # ------------------------------------------------------------------
    # Table V
    # ------------------------------------------------------------------
    def table5_rows(self) -> list[dict]:
        """Dataset description: initial and cleaned sizes."""
        rows = []
        order = ("phishTrain", "phishTest", "phishBrand", "legTrain",
                 *LANGUAGES)
        for name in order:
            dataset = self.dataset(name)
            rows.append({
                "set": "Phish" if name.startswith("phish") else "Leg",
                "name": name,
                "initial": dataset.initial_count or len(dataset),
                "clean": len(dataset),
            })
        return rows

    # ------------------------------------------------------------------
    # Table VI / Figs. 3-4
    # ------------------------------------------------------------------
    def table6_rows(self) -> list[dict]:
        """Accuracy across six languages (scenario2, fall, θ=0.7)."""
        rows = []
        for language in LANGUAGES:
            y, scores = self.scenario2_scores(language)
            row = {"language": language}
            row.update(self._metric_row(y, scores))
            rows.append(row)
        return rows

    def fig3_curves(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Precision-recall curves per language: ``{lang: (prec, rec)}``."""
        curves = {}
        for language in LANGUAGES:
            y, scores = self.scenario2_scores(language)
            precision, recall, _ = precision_recall_curve(y, scores)
            curves[language] = (precision, recall)
        return curves

    def fig4_curves(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """ROC curves per language: ``{lang: (fpr, tpr)}``."""
        curves = {}
        for language in LANGUAGES:
            y, scores = self.scenario2_scores(language)
            fpr, tpr, _ = roc_curve(y, scores)
            curves[language] = (fpr, tpr)
        return curves

    # ------------------------------------------------------------------
    # Table VII / Figs. 2 and 5
    # ------------------------------------------------------------------
    def table7_rows(self) -> list[dict]:
        """Accuracy per feature set under both scenarios."""
        rows = []
        for scenario in ("cross-validation", "english"):
            for feature_set in FEATURE_SETS:
                if scenario == "cross-validation":
                    y, scores = self.scenario1_scores(feature_set)
                else:
                    y, scores = self.scenario2_scores("english", feature_set)
                row = {"scenario": scenario, "feature_set": feature_set}
                row.update(self._metric_row(y, scores))
                rows.append(row)
        return rows

    def fig5_curves(self) -> dict[tuple[str, str], tuple[np.ndarray, np.ndarray]]:
        """ROC per feature set: ``{(set, scenario): (fpr, tpr)}``."""
        curves = {}
        for feature_set in FEATURE_SETS:
            y, scores = self.scenario1_scores(feature_set)
            curves[(feature_set, "cross-validation")] = roc_curve(y, scores)[:2]
            y, scores = self.scenario2_scores("english", feature_set)
            curves[(feature_set, "english")] = roc_curve(y, scores)[:2]
        return curves

    # ------------------------------------------------------------------
    # Fig. 6 — scalability
    # ------------------------------------------------------------------
    def fig6_curve(self, steps: int = 10) -> list[dict]:
        """Precision/recall/FPR as the test set grows step by step.

        Mirrors the paper: start with 1/steps of the English legitimate
        set and of phishTest, then add equal increments (the paper uses
        10k legitimate + 100 phish per step at full scale).
        """
        rng = np.random.default_rng(self.config.seed)
        legit_X = self.features("english")
        phish_X = self.features("phishTest")
        legit_order = rng.permutation(len(legit_X))
        phish_order = rng.permutation(len(phish_X))
        detector = self.detector("fall")

        legit_scores = detector.predict_proba(legit_X)
        phish_scores = detector.predict_proba(phish_X)

        rows = []
        for step in range(1, steps + 1):
            n_legit = int(len(legit_X) * step / steps)
            n_phish = max(1, int(len(phish_X) * step / steps))
            scores = np.concatenate([
                legit_scores[legit_order[:n_legit]],
                phish_scores[phish_order[:n_phish]],
            ])
            y = np.concatenate([
                np.zeros(n_legit, dtype=int), np.ones(n_phish, dtype=int)
            ])
            row = {"sample_size": n_legit + n_phish}
            row.update(self._metric_row(y, scores))
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Table VIII — processing time
    # ------------------------------------------------------------------
    def table8_timing(self, sample_size: int = 100) -> dict[str, dict[str, float]]:
        """Per-stage processing times in milliseconds.

        Stages mirror the paper's Table VIII: webpage scraping, loading
        the saved data, feature extraction and classification.
        """
        detector = self.detector("fall")
        pages = list(self.dataset("english"))[:sample_size]
        timings: dict[str, list[float]] = {
            "scraping": [], "loading": [], "features": [], "classification": [],
        }
        for page in pages:
            start = time.perf_counter()
            snapshot = self.world.browser.load(page.snapshot.starting_url)
            timings["scraping"].append(time.perf_counter() - start)

            payload = snapshot.to_dict()
            start = time.perf_counter()
            snapshot = PageSnapshot.from_dict(payload)
            timings["loading"].append(time.perf_counter() - start)

            start = time.perf_counter()
            vector = self.extractor.extract(snapshot)
            timings["features"].append(time.perf_counter() - start)

            start = time.perf_counter()
            detector.predict_proba(vector.reshape(1, -1))
            timings["classification"].append(time.perf_counter() - start)

        result = {}
        for stage, values in timings.items():
            millis = np.asarray(values) * 1000.0
            result[stage] = {
                "median": float(np.median(millis)),
                "average": float(millis.mean()),
                "std": float(millis.std()),
            }
        totals = (
            np.asarray(timings["loading"])
            + np.asarray(timings["features"])
            + np.asarray(timings["classification"])
        ) * 1000.0
        result["total_no_scraping"] = {
            "median": float(np.median(totals)),
            "average": float(totals.mean()),
            "std": float(totals.std()),
        }
        return result

    # ------------------------------------------------------------------
    # Table IX — target identification
    # ------------------------------------------------------------------
    def target_identifier(self) -> TargetIdentifier:
        """A target identifier bound to the world's search engine."""
        return TargetIdentifier(self.world.search, ocr=self.ocr)

    def table9_target_id(self) -> dict:
        """Target identification on phishBrand: top-1/2/3 success."""
        identifier = self.target_identifier()
        counts = {1: 0, 2: 0, 3: 0}
        unknown = 0
        total = len(self.dataset("phishBrand"))
        for page in self.dataset("phishBrand"):
            if page.target_mld is None:
                unknown += 1
                continue
            result = identifier.identify(page.snapshot)
            for k in counts:
                if result.target_in_top(page.target_mld, k):
                    counts[k] += 1
        rows = {}
        for k, identified in counts.items():
            missed = total - unknown - identified
            rows[f"top-{k}"] = {
                "identified": identified,
                "unknown": unknown,
                "missed": missed,
                "success_rate": identified / total if total else 0.0,
            }
        return rows

    # ------------------------------------------------------------------
    # §VI-D — false-positive filtering
    # ------------------------------------------------------------------
    def sec6d_fp_filtering(self) -> dict:
        """Run misclassified legitimate pages through target identification.

        Returns the verdict breakdown of the detector's English false
        positives and the before/after false positive rates.
        """
        y, scores = self.scenario2_scores("english")
        english = self.dataset("english")
        n_legit = len(english)
        predictions = (scores >= self.threshold).astype(int)
        fp_indices = [
            index for index in range(n_legit) if predictions[index] == 1
        ]

        identifier = self.target_identifier()
        breakdown = {"phish": 0, "suspicious": 0, "legitimate": 0}
        for index in fp_indices:
            result = identifier.identify(english[index].snapshot)
            breakdown[result.verdict] += 1

        fpr_before = len(fp_indices) / n_legit if n_legit else 0.0
        remaining = breakdown["phish"] + breakdown["suspicious"]
        fpr_after = remaining / n_legit if n_legit else 0.0
        return {
            "false_positives": len(fp_indices),
            "breakdown": breakdown,
            "fpr_before": fpr_before,
            "fpr_after": fpr_after,
        }

    # ------------------------------------------------------------------
    # Table X — baseline comparison
    # ------------------------------------------------------------------
    def table10_rows(self) -> list[dict]:
        """Our method vs re-implemented baselines on shared data."""
        rows = []

        # Ours: English scenario2, multilingual scenario2, CV.
        y, scores = self.scenario2_scores("english")
        rows.append({"technique": "our method (english)",
                     **self._metric_row(y, scores)})
        ys, all_scores = [], []
        for language in LANGUAGES:
            y, scores = self.scenario2_scores(language)
            mask_phish = y == 1
            if language != "english":
                # Count the shared phishTest only once across languages.
                y, scores = y[~mask_phish], scores[~mask_phish]
            ys.append(y)
            all_scores.append(scores)
        y_all, scores_all = np.concatenate(ys), np.concatenate(all_scores)
        rows.append({"technique": "our method (multilingual)",
                     **self._metric_row(y_all, scores_all)})
        y, scores = self.scenario1_scores("fall")
        rows.append({"technique": "our method (cross-validation)",
                     **self._metric_row(y, scores)})

        # Baselines are evaluated on the *multilingual* scenario2 test set
        # (all six legitimate language sets + phishTest): the paper's
        # comparison argues precisely that static-term methods break
        # outside the training language/brand distribution.
        train = self.dataset("legTrain") + self.dataset("phishTrain")
        test = self.dataset("english")
        for language in LANGUAGES:
            if language != "english":
                test = test + self.dataset(language)
        test = test + self.dataset("phishTest")
        test_snapshots = [page.snapshot for page in test]
        y_test = test.labels()

        cantina = CantinaClassifier(self.world.search)
        cantina.fit_idf(page.snapshot for page in self.dataset("legTrain"))
        predictions = cantina.predict_snapshots(test_snapshots)
        metrics = binary_metrics(y_test, predictions)
        rows.append({"technique": "cantina (tf-idf + search)",
                     **metrics.as_dict(), "auc": float("nan")})

        url_model = UrlLexicalClassifier()
        url_model.fit_snapshots([p.snapshot for p in train], train.labels())
        scores = url_model.predict_proba_snapshots(test_snapshots)
        row = binary_metrics(
            y_test, (scores >= url_model.threshold).astype(int)
        ).as_dict()
        row["auc"] = roc_auc(y_test, scores)
        rows.append({"technique": "url lexical (ma et al. style)", **row})

        bow = BagOfWordsClassifier()
        bow.fit_snapshots([p.snapshot for p in train], train.labels())
        scores = bow.predict_proba_snapshots(test_snapshots)
        row = binary_metrics(
            y_test, (scores >= bow.threshold).astype(int)
        ).as_dict()
        row["auc"] = roc_auc(y_test, scores)
        rows.append({"technique": "bag-of-words (whittaker style)", **row})
        return rows

    # ------------------------------------------------------------------
    # §VII-B and §VII-C — limitations and evasion
    # ------------------------------------------------------------------
    def _fresh_phish_batch(
        self, count: int, seed_offset: int, **generate_kwargs
    ) -> list:
        """Generate and scrape a fresh batch of phishing pages."""
        rng = np.random.default_rng(self.config.seed + seed_offset)
        generator = PhishingSiteGenerator(
            self.world.web, rng, self.world.brands
        )
        snapshots = []
        for _ in range(count):
            phish = generator.generate(**generate_kwargs)
            snapshots.append(self.world.browser.load(phish.starting_url))
        return snapshots

    def sec7_ip_recall(self, count: int = 30) -> dict[str, float]:
        """Recall on IP-based phishing URLs vs the global recall."""
        detector = self.detector("fall")
        snapshots = self._fresh_phish_batch(count, seed_offset=101,
                                            hosting="ip")
        X = self.extractor.extract_many(snapshots)
        recall_ip = float(
            (detector.predict_proba(X) >= self.threshold).mean()
        )
        y, scores = self.scenario2_scores("english")
        phish_mask = y == 1
        recall_global = float(
            (scores[phish_mask] >= self.threshold).mean()
        )
        return {"ip_recall": recall_ip, "global_recall": recall_global}

    # ------------------------------------------------------------------
    # extensions beyond the paper's tables
    # ------------------------------------------------------------------
    def sec8_blacklist_exposure(
        self, campaigns: int = 400, propagation_delay: float = 6.0
    ) -> dict[str, float]:
        """§VIII deployment argument: blacklist delay vs phish lifetime.

        Quantifies the victim-exposure window of an offline blacklist
        pipeline against the client-side detector's first-load recall.
        """
        from repro.baselines.blacklist import (
            BlacklistDefense,
            exposure_analysis,
            generate_campaign_timeline,
        )

        timeline = generate_campaign_timeline(
            campaigns, median_lifetime=9.0, seed=self.config.seed
        )
        blacklist = BlacklistDefense(
            propagation_delay=propagation_delay, coverage=0.9,
            seed=self.config.seed,
        )
        y, scores = self.scenario2_scores("english")
        recall = float((scores[y == 1] >= self.threshold).mean())
        return exposure_analysis(timeline, blacklist,
                                 client_side_recall=recall)

    def model_choice_ablation(self) -> dict[str, float]:
        """Gradient boosting vs a linear model on the same 212 features.

        The paper selects boosting for its feature-selection ability and
        overfitting robustness (Section IV-C); this quantifies the gap.
        """
        from repro.ml.linear import LogisticRegression
        from repro.ml.metrics import roc_auc as auc_of

        X_train, y_train = self.train_matrix()
        X_test = np.vstack([
            self.features("english"), self.features("phishTest")
        ])
        y_test = np.concatenate([
            self.dataset("english").labels(),
            self.dataset("phishTest").labels(),
        ])

        results = {}
        y, scores = self.scenario2_scores("english")
        results["gradient_boosting"] = auc_of(y, scores)

        # Linear model needs feature standardisation to converge.
        mean = X_train.mean(axis=0)
        std = X_train.std(axis=0)
        std[std == 0] = 1.0
        linear = LogisticRegression(epochs=60, random_state=0)
        linear.fit((X_train - mean) / std, y_train)
        results["logistic_regression"] = auc_of(
            y_test, linear.predict_proba((X_test - mean) / std)
        )
        return results

    def _drifted_snapshots(
        self, count: int, seed_offset: int = 999
    ) -> tuple[list, int]:
        """Loaded snapshots of a drifted future campaign wave.

        The drift recipe shared by :meth:`temporal_drift` and the
        quality drift scenario: later campaigns prefer free hosting
        and compromised servers, use HTTPS-grade clone kits and hit
        brands unseen in training.  Returns ``(snapshots,
        skipped_urls)`` — unparsable compromised-pool URLs are
        counted, not silently dropped.
        """
        from repro.urls.parsing import UrlParseError, parse_url

        rng = np.random.default_rng(self.config.seed + seed_offset)
        compromised_pool = []
        skipped_urls = 0
        for page in self.dataset("legTrain")[:60]:
            try:
                rdn = parse_url(page.snapshot.landing_url).rdn
            except UrlParseError:
                skipped_urls += 1
                continue
            if rdn:
                compromised_pool.append(rdn)
        generator = PhishingSiteGenerator(
            self.world.web, rng, self.world.brands,
            compromised_pool=compromised_pool[:30],
        )
        drifted_hosting = ("hosting_provider", "hosting_provider",
                           "compromised", "deceptive", "random")
        unseen_brands = list(self.world.brands)[
            int(len(self.world.brands) * self.config.train_brand_share):
        ]
        snapshots = []
        for _ in range(count):
            hosting = drifted_hosting[int(rng.integers(len(drifted_hosting)))]
            target = (
                unseen_brands[int(rng.integers(len(unseen_brands)))]
                if unseen_brands else None
            )
            phish = generator.generate(
                target=target, hosting=hosting, quality="high"
            )
            snapshots.append(self.world.browser.load(phish.starting_url))
        return snapshots, skipped_urls

    def temporal_drift(self, count: int = 60) -> dict[str, float]:
        """Recall on a drifted future campaign wave.

        Simulates the ecosystem moving on after training: the trained
        model is evaluated unchanged on the
        :meth:`_drifted_snapshots` wave.
        """
        detector = self.detector("fall")
        snapshots, skipped_urls = self._drifted_snapshots(count)
        X = self.extractor.extract_many(snapshots)
        drifted_recall = float(
            (detector.predict_proba(X) >= self.threshold).mean()
        )
        y, scores = self.scenario2_scores("english")
        baseline_recall = float(
            (scores[y == 1] >= self.threshold).mean()
        )
        return {
            "baseline_recall": baseline_recall,
            "drifted_recall": drifted_recall,
            # Unparsable URLs are counted, not silently dropped: a run
            # summary hiding skips would overstate pool coverage.
            "skipped_urls": float(skipped_urls),
        }

    def sec7_evasion(self, count: int = 30) -> dict[str, float]:
        """Detection recall under each single evasion technique."""
        detector = self.detector("fall")
        techniques = (
            "none", "minimal_text", "no_external_links",
            "no_external_resources", "image_based", "misspell_terms",
            "short_url",
        )
        results = {}
        for offset, technique in enumerate(techniques):
            if technique == "none":
                snapshots = self._fresh_phish_batch(count, seed_offset=200)
            else:
                rng = np.random.default_rng(self.config.seed + 200 + offset)
                generator = PhishingSiteGenerator(
                    self.world.web, rng, self.world.brands
                )
                snapshots = []
                for _ in range(count):
                    phish = generator.generate_with_evasion(technique)
                    snapshots.append(
                        self.world.browser.load(phish.starting_url)
                    )
            X = self.extractor.extract_many(snapshots)
            results[technique] = float(
                (detector.predict_proba(X) >= self.threshold).mean()
            )
        return results

    # ------------------------------------------------------------------
    # robustness: fault injection + graceful degradation
    # ------------------------------------------------------------------
    def _robustness_workload(
        self, pages_per_class: int
    ) -> tuple[list[str], dict[str, int]]:
        """Starting URLs + ground-truth labels for the robustness runs."""
        urls: list[str] = []
        labels: dict[str, int] = {}
        for name, label in (("english", 0), ("phishTest", 1)):
            for page in list(self.dataset(name))[:pages_per_class]:
                url = page.snapshot.starting_url
                urls.append(url)
                labels[url] = label
        return urls, labels

    def _resilient_pipeline(self, search=None, ocr=None) -> "KnowYourPhish":
        """The full pipeline over a (possibly wrapped) search engine."""
        from repro.core.pipeline import KnowYourPhish

        identifier = TargetIdentifier(
            search if search is not None else self.world.search,
            ocr=ocr if ocr is not None else self.ocr,
        )
        return KnowYourPhish(self.detector("fall"), identifier)

    def _batch_accuracy(self, pipeline, report, labels) -> float:
        """Blocking accuracy over the analyzed pages of a batch report."""
        if not report.analyzed:
            return 0.0
        correct = sum(
            1 for page in report.analyzed
            if int(pipeline.is_blocked(page.verdict)) == labels[page.url]
        )
        return correct / len(report.analyzed)

    def robustness_curve(
        self,
        fault_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
        pages_per_class: int = 40,
        max_attempts: int = 20,
    ) -> list[dict]:
        """Completion and accuracy vs injected transient-fault rate.

        For each rate the synthetic web is wrapped in a seeded
        :class:`~repro.web.faults.FlakyWeb` injecting timeouts, resets
        and 5xx responses; a
        :class:`~repro.resilience.browser.ResilientBrowser` retries with
        exponential backoff over a virtual clock (instant, deterministic)
        and failures are quarantined by ``analyze_many`` instead of
        aborting.  Transient faults leave content untouched, so retried
        pages must reproduce the fault-free verdicts exactly — the
        experiment measures that the resilience layer preserves both
        completion (100%) and accuracy under fire.
        """
        from repro.resilience import ManualClock, ResilientBrowser, RetryPolicy
        from repro.web.faults import FaultPlan, FlakyWeb

        urls, labels = self._robustness_workload(pages_per_class)
        rows = []
        for rate in fault_rates:
            clock = ManualClock()
            plan = FaultPlan.transient(
                rate, seed=self.config.seed + int(rate * 1000)
            )
            flaky = FlakyWeb(self.world.web, plan, clock=clock)
            browser = ResilientBrowser(
                flaky,
                policy=RetryPolicy(
                    max_attempts=max_attempts, base_delay=0.05,
                    clock=clock, seed=self.config.seed,
                ),
                page_budget=120.0,
                clock=clock,
            )
            pipeline = self._resilient_pipeline()
            report = pipeline.analyze_many(urls, browser, pool=self.pool)
            summary = report.summary()
            faults_injected = int(sum(
                flaky.stats[kind] for kind in ("timeout", "reset",
                                               "server_error")
            ))
            rows.append({
                "fault_rate": rate,
                "pages": summary["total"],
                "completed": summary["analyzed"],
                "quarantined": summary["quarantined"],
                "completion_rate": summary["completion_rate"],
                "retried_pages": summary["retried"],
                "faults_injected": faults_injected,
                "accuracy": self._batch_accuracy(pipeline, report, labels),
            })
        return rows

    def throughput_benchmark(
        self,
        pages_per_class: int = 40,
        workers: int = 4,
        backend: str = "thread",
        repeats: int = 3,
    ) -> list[dict]:
        """Batch-analysis throughput: serial vs parallel, cold vs warm cache.

        Runs the full pipeline over the ``ext-robustness`` workload
        (English legitimate + phishTest starting URLs) in four
        configurations — {serial, ``workers``-worker pool} × {cold
        cache, warm cache} — and reports pages/sec for each plus the
        speedup over the serial cold run.  Every configuration is
        checked to produce verdicts identical to the serial cold run
        (the throughput layer's core guarantee).

        Cold runs use a fresh :class:`~repro.parallel.AnalysisCache`;
        warm runs reuse one filled by a priming pass over the same
        workload.  Each configuration runs ``repeats`` times (cold
        modes rebuild their cache every round) and reports the fastest
        round — min-of-N keeps the mode-vs-mode comparisons stable on
        a noisy machine.
        """
        from repro.core.pipeline import KnowYourPhish
        from repro.web.browser import Browser as PlainBrowser

        urls, _labels = self._robustness_workload(pages_per_class)
        base = self.detector("fall")

        def _pipeline(cache: AnalysisCache | None) -> KnowYourPhish:
            detector = PhishingDetector(
                extractor=FeatureExtractor(
                    alexa=self.world.alexa, cache=cache
                ),
                feature_set=base.feature_set,
                threshold=base.threshold,
            )
            detector.model = base.model
            identifier = TargetIdentifier(self.world.search, ocr=self.ocr)
            return KnowYourPhish(detector, identifier)

        def _verdict_key(report) -> list[tuple]:
            return [
                (page.url, page.verdict.verdict, page.verdict.confidence,
                 tuple(page.verdict.targets))
                for page in report.analyzed
            ]

        warm_cache = AnalysisCache(max_entries=16384)
        _pipeline(warm_cache).analyze_many(urls, PlainBrowser(self.world.web))

        runs = (
            ("serial/cold", None, None),
            (f"parallel{workers}/cold", workers, None),
            ("serial/warm", None, warm_cache),
            (f"parallel{workers}/warm", workers, warm_cache),
        )
        pools = {
            mode: WorkerPool(workers=run_workers, backend=backend)
            for mode, run_workers, _cache in runs if run_workers
        }
        best: dict[str, float] = {mode: float("inf") for mode, _w, _c in runs}
        keys: dict[str, list[tuple]] = {}
        try:
            # Interleave the rounds: the machine's speed drifts over a
            # benchmark's lifetime, and timing each mode's rounds
            # back-to-back would let that drift masquerade as a
            # mode-vs-mode difference.  One round of every mode per
            # pass, fastest round kept.
            for _ in range(repeats):
                for mode, _run_workers, cache in runs:
                    pipeline = _pipeline(
                        cache if cache is not None
                        else AnalysisCache(max_entries=16384)
                    )
                    browser = PlainBrowser(self.world.web)
                    pool = pools.get(mode)
                    started = time.perf_counter()
                    report = pipeline.analyze_many(urls, browser, pool=pool)
                    best[mode] = min(
                        best[mode], time.perf_counter() - started
                    )
                    keys[mode] = _verdict_key(report)
        finally:
            for pool in pools.values():
                pool.close()
        rows = []
        reference: list[tuple] | None = None
        baseline_rate: float | None = None
        for mode, run_workers, cache in runs:
            if reference is None:
                reference = keys[mode]
            rate = len(urls) / best[mode] if best[mode] else float("inf")
            if baseline_rate is None:
                baseline_rate = rate
            rows.append({
                "mode": mode,
                "workers": run_workers or 1,
                "warm_cache": cache is not None,
                "pages": len(urls),
                "seconds": best[mode],
                "pages_per_sec": rate,
                "speedup": rate / baseline_rate if baseline_rate else 0.0,
                "verdicts_match": keys[mode] == reference,
            })
        return rows

    def extraction_benchmark(
        self,
        pages_per_class: int = 40,
        repeats: int = 3,
    ) -> list[dict]:
        """Feature-extraction stage in isolation: per-page vs columnar.

        The end-to-end pipeline rate is floored by serial page loads
        and per-page target identification, which no extraction rewrite
        can touch — so the columnar path's real effect is measured at
        the stage level.  Three configurations over the robustness
        workload's snapshots: the per-page ``extract`` loop, a cold
        ``extract_batch`` pass, and a warm (cache-hit) ``extract_batch``
        pass.  Each is timed ``repeats`` times and the fastest run kept
        (min-of-N is the stable estimator on a noisy machine).  Every
        row reports pages/sec and the speedup over the per-page loop;
        ``bit_identical`` re-checks the differential guarantee — batch
        cells equal serial cells to the last bit — on live corpus data.
        """
        snapshots = [
            page.snapshot
            for name in ("english", "phishTest")
            for page in list(self.dataset(name))[:pages_per_class]
        ]

        per_page = FeatureExtractor(alexa=self.world.alexa)
        warm_extractor = FeatureExtractor(
            alexa=self.world.alexa,
            cache=AnalysisCache(max_entries=16384),
        )
        warm_extractor.extract_batch(snapshots)  # priming pass
        configs = (
            ("per_page/cold", lambda: np.vstack(
                [per_page.extract(snapshot) for snapshot in snapshots]
            )),
            # a fresh extractor per round keeps this pass genuinely cold
            ("batch/cold", lambda: FeatureExtractor(
                alexa=self.world.alexa
            ).extract_batch(snapshots)),
            ("batch/warm", lambda: warm_extractor.extract_batch(snapshots)),
        )
        best = {mode: float("inf") for mode, _fn in configs}
        matrices = {}
        # Interleaved rounds, for the same reason as in
        # :meth:`throughput_benchmark`: machine-speed drift must hit
        # every configuration, not whichever happened to run last.
        for _ in range(repeats):
            for mode, fn in configs:
                started = time.perf_counter()
                matrices[mode] = fn()
                best[mode] = min(best[mode], time.perf_counter() - started)

        n_pages = len(snapshots)
        base_rate = n_pages / best["per_page/cold"]
        reference = matrices["per_page/cold"]
        rows = []
        for mode, _fn in configs:
            seconds, matrix = best[mode], matrices[mode]
            rate = n_pages / seconds if seconds else float("inf")
            rows.append({
                "mode": mode,
                "pages": n_pages,
                "seconds": seconds,
                "pages_per_sec": rate,
                "speedup": rate / base_rate,
                "bit_identical": bool(np.array_equal(matrix, reference)),
            })
        return rows

    def training_benchmark(
        self,
        n_estimators: int | None = None,
        cv_splits: int = 5,
        cv_workers: int = 4,
        cv_backend: str = "process",
    ) -> dict:
        """Training-speed benchmark: tree methods + fold-parallel CV.

        Part one fits the ensemble on the standard corpus feature
        matrix (legTrain + phishTrain, paper hyperparameters) once per
        ``tree_method`` and reports each method's
        :class:`~repro.ml.instrumentation.TrainingStats`, its speedup
        over the seed ``exact`` path, and whether its ``predict_proba``
        output is bit-identical to ``exact`` (guaranteed for
        ``presort``, not for ``histogram``).

        Part two runs scenario1-style cross-validation serially and
        fold-parallel over a ``cv_workers``-worker pool and reports the
        speedup plus an exact equality check of the pooled scores.  The
        default backend is ``process``: tree fitting holds the GIL, so
        threads cannot parallelise it.  On a single-core machine the
        parallel run cannot win — equality still holds and the measured
        (possibly sub-1x) speedup is reported as-is.

        Returns a machine-readable dict; the training benchmark writes
        it to ``benchmarks/results/training.json``.
        """
        X, y = self.train_matrix()
        stages = n_estimators or self.n_estimators
        results: dict = {
            "n_samples": int(X.shape[0]),
            "n_features": int(X.shape[1]),
            "n_estimators": stages,
            "methods": {},
        }

        reference_proba: np.ndarray | None = None
        exact_seconds: float | None = None
        for method in ("exact", "presort", "histogram"):
            clf = GradientBoostingClassifier(
                n_estimators=stages, random_state=0, subsample=0.9,
                tree_method=method,
            )
            started = time.perf_counter()
            clf.fit(X, y)
            elapsed = time.perf_counter() - started
            proba = clf.predict_proba(X)
            if method == "exact":
                reference_proba = proba
                exact_seconds = elapsed
            entry = clf.fit_stats_.as_dict()
            entry["fit_seconds"] = elapsed
            entry["speedup_vs_exact"] = (
                exact_seconds / elapsed if elapsed else float("inf")
            )
            entry["proba_identical_to_exact"] = bool(
                np.array_equal(proba, reference_proba)
            )
            results["methods"][method] = entry

        factory = _FoldDetectorFactory(
            feature_set="fall", threshold=self.threshold,
            n_estimators=stages, tree_method="presort",
        )
        started = time.perf_counter()
        serial = cross_validate_scores(
            factory, X, y, n_splits=cv_splits,
            random_state=self.config.seed,
        )
        serial_seconds = time.perf_counter() - started
        with WorkerPool(workers=cv_workers, backend=cv_backend) as pool:
            started = time.perf_counter()
            parallel = cross_validate_scores(
                factory, X, y, n_splits=cv_splits,
                random_state=self.config.seed, pool=pool,
            )
            parallel_seconds = time.perf_counter() - started
        results["cross_validation"] = {
            "n_splits": cv_splits,
            "workers": cv_workers,
            "backend": cv_backend,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": (
                serial_seconds / parallel_seconds
                if parallel_seconds else float("inf")
            ),
            "scores_identical": bool(
                np.array_equal(serial[0], parallel[0])
                and np.array_equal(serial[1], parallel[1])
            ),
        }
        return results

    def robustness_search_outage(self, count: int = 30) -> dict:
        """Graceful degradation with the search engine forced down.

        Every query fails, the circuit breaker trips after its failure
        threshold, and from then on flagged pages fail fast into
        detector-only verdicts tagged ``degraded`` — no exception ever
        reaches the caller, and no page is lost.
        """
        from repro.resilience import (
            CircuitBreaker,
            GuardedSearchEngine,
            ManualClock,
            SearchUnavailableError,
        )
        from repro.web.faults import FlakySearchEngine

        clock = ManualClock()
        flaky_search = FlakySearchEngine(self.world.search, forced_down=True)
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_time=300.0,
            failure_types=(SearchUnavailableError,), clock=clock,
            name="search",
        )
        guarded = GuardedSearchEngine(flaky_search, breaker=breaker)
        pipeline = self._resilient_pipeline(search=guarded)

        flagged = degraded_detector_only = 0
        pages = list(self.dataset("phishTest"))[:count]
        for page in pages:
            verdict = pipeline.analyze(page.snapshot)
            if verdict.confidence >= self.threshold:
                flagged += 1
                if verdict.degraded and "search_unavailable" in verdict.degradations:
                    degraded_detector_only += 1
        return {
            "pages": len(pages),
            "flagged": flagged,
            "degraded_detector_only": degraded_detector_only,
            "breaker_opened": breaker.opened_count,
            "breaker_trips": breaker.stats["trips"],
            "queries_attempted": breaker.stats["calls"],
            "rejected_fast": breaker.stats["rejected"],
            "transitions": dict(sorted(breaker.transitions.items())),
        }

    def robustness_degraded_content(
        self, rate: float = 0.5, pages_per_class: int = 40
    ) -> dict:
        """Accuracy when pages load, but partially.

        Content faults (truncated HTML, missing screenshots) cannot be
        retried away — the page *did* load.  Features are extracted from
        whatever sources survived; this measures the accuracy cost of
        analysing partial pages instead of dropping them.
        """
        from repro.resilience import ManualClock, ResilientBrowser, RetryPolicy
        from repro.web.faults import FaultPlan, FlakyWeb

        urls, labels = self._robustness_workload(pages_per_class)
        pipeline = self._resilient_pipeline()

        clean_clock = ManualClock()
        clean_browser = ResilientBrowser(
            FlakyWeb(self.world.web, FaultPlan(seed=self.config.seed),
                     clock=clean_clock),
            policy=RetryPolicy(clock=clean_clock), clock=clean_clock,
        )
        baseline = pipeline.analyze_many(urls, clean_browser, pool=self.pool)

        clock = ManualClock()
        plan = FaultPlan.degraded_content(rate, seed=self.config.seed + 77)
        browser = ResilientBrowser(
            FlakyWeb(self.world.web, plan, clock=clock),
            policy=RetryPolicy(clock=clock), clock=clock,
        )
        report = pipeline.analyze_many(urls, browser, pool=self.pool)
        return {
            "fault_rate": rate,
            "pages": report.summary()["total"],
            "degraded_pages": report.summary()["degraded"],
            "baseline_accuracy": self._batch_accuracy(
                pipeline, baseline, labels
            ),
            "degraded_accuracy": self._batch_accuracy(
                pipeline, report, labels
            ),
        }

    # ------------------------------------------------------------------
    # serving: overload + chaos under simulated time
    # ------------------------------------------------------------------
    def _offline_reference(self, urls, search) -> dict[str, tuple]:
        """Offline ``analyze_many`` verdicts keyed by URL.

        The serving benchmark's ground truth: each URL's
        ``(verdict, confidence, targets)`` triple from a plain batch
        run over the clean web with the given search engine.
        """
        from repro.resilience import ManualClock, ResilientBrowser, RetryPolicy

        clock = ManualClock()
        browser = ResilientBrowser(
            self.world.web, policy=RetryPolicy(clock=clock), clock=clock
        )
        pipeline = self._resilient_pipeline(search=search)
        report = pipeline.analyze_many(urls, browser)
        return {
            page.url: (
                page.verdict.verdict,
                page.verdict.confidence,
                tuple(page.verdict.targets),
            )
            for page in report.analyzed
        }

    def serving_benchmark(
        self,
        pages_per_class: int = 25,
        workers: int = 4,
        analysis_cost: float = 0.1,
        overload: float = 3.0,
        duration: float = 2.0,
        budget: float = 1.2,
        queue_limit: int = 32,
        stall_rate: float = 0.04,
        outage: tuple[float, float] = (0.4, 0.6),
        storm_at: tuple[float, ...] = (0.3, 0.45, 0.6),
    ) -> dict:
        """The overload + chaos serving scenario, end to end.

        Offers ``overload``× the sustainable rate
        (``workers / analysis_cost``) of Zipf-skewed traffic to a
        :class:`~repro.serve.ServingEngine` for ``duration`` simulated
        seconds, then stresses every defence mid-run:

        * a **search outage** (breaker-guarded ``force_down``) in the
          middle third — flagged pages degrade to detector-only
          verdicts;
        * a **hot-key storm** on a held-out URL *during* the outage —
          exercises coalescing on a page first seen while degraded;
        * **slow pages** (deterministic stall faults) against the
          per-request deadline — stalled loads shed instead of
          blocking a worker past the budget;
        * a **worker loss** while overloaded;
        * a **graceful drain** before the offered load ends — late
          arrivals shed ``draining``, everything admitted completes.

        Returns the serving report summary plus the cross-checks the
        benchmark asserts on: every request terminated, completed
        verdicts byte-identical to offline ``analyze_many`` references
        (healthy and forced-down search), no completed response past
        its budget, and the queue never beyond its bound.  Everything
        runs on a :class:`~repro.resilience.ManualClock` — simulated
        seconds, deterministic to the byte.
        """
        from repro.resilience import (
            CircuitBreaker,
            GuardedSearchEngine,
            ManualClock,
            ResilientBrowser,
            RetryPolicy,
            SearchUnavailableError,
        )
        from repro.serve import (
            AdmissionController,
            ServingEngine,
            TokenBucket,
            ZipfSampler,
            build_requests,
            burst,
            constant_rate,
            hot_key_storm,
            search_outage,
            worker_loss,
        )
        from repro.web.faults import FaultPlan, FlakySearchEngine, FlakyWeb

        urls, _labels = self._robustness_workload(pages_per_class)
        # Hold the last three (phishing) URLs out of the steady traffic
        # so the storms hit pages first seen mid-outage: their fresh
        # analyses must run search queries into the dead engine,
        # degrading to detector-only verdicts and tripping the breaker.
        held_out = urls[-3:]
        sampler = ZipfSampler(
            urls[:-3], exponent=1.1, seed=self.config.seed
        )
        capacity = workers / analysis_cost
        offered_rate = overload * capacity
        drain_at = 0.9 * duration
        storms = [
            hot_key_storm(
                url, at=fraction * duration, count=12,
                spread=0.04 * duration,
            )
            for url, fraction in zip(held_out, storm_at)
        ]
        requests = build_requests(
            constant_rate(sampler, offered_rate, duration),
            *storms,
            burst(sampler, at=0.95 * duration, count=20),
            budget=budget,
        )

        clock = ManualClock()
        flaky_web = FlakyWeb(
            self.world.web,
            # Stall delay sits just above the request budget: a stalled
            # load must blow the deadline (and shed) rather than merely
            # run slow, without starving the workers for long.
            FaultPlan.latency(stall_rate, delay=budget * 1.25,
                              seed=self.config.seed),
            clock=clock,
        )
        browser = ResilientBrowser(
            flaky_web,
            policy=RetryPolicy(clock=clock, seed=self.config.seed),
            clock=clock,
        )
        flaky_search = FlakySearchEngine(self.world.search)
        # Threshold 2, not 3: coalescing and the verdict memo are so
        # effective that only the storms' fresh analyses ever reach the
        # dead search engine — repeat requests ride the memoized
        # degraded verdicts without touching the breaker at all.
        breaker = CircuitBreaker(
            failure_threshold=2,
            recovery_time=0.2 * duration,
            failure_types=(SearchUnavailableError,),
            clock=clock,
            name="search",
        )
        pipeline = self._resilient_pipeline(
            search=GuardedSearchEngine(flaky_search, breaker=breaker)
        )
        admission = AdmissionController(
            TokenBucket(rate=capacity, capacity=float(workers * 4)),
            queue_limit=queue_limit,
        )
        engine = ServingEngine(
            pipeline, browser, admission,
            clock=clock, workers=workers, analysis_cost=analysis_cost,
        )
        chaos = search_outage(
            flaky_search,
            at=outage[0] * duration,
            duration=outage[1] * duration,
        ) + worker_loss(at=0.6 * duration)
        report = engine.run(requests, chaos=chaos, drain_at=drain_at)

        # Cross-check served verdicts against offline analyze_many on
        # the same pages: healthy search and forced-down search are the
        # only two states chaos puts the dependency in, so every
        # completed response must be byte-identical to one of them.
        unique_urls = sorted({request.url for request in requests})
        reference_healthy = self._offline_reference(
            unique_urls, search=self.world.search
        )
        reference_outage = self._offline_reference(
            unique_urls,
            search=FlakySearchEngine(self.world.search, forced_down=True),
        )
        mismatches = 0
        budget_violations = 0
        for response in report.responses:
            if not response.completed:
                continue
            triple = (
                response.verdict,
                response.confidence,
                tuple(response.targets),
            )
            if triple not in (
                reference_healthy.get(response.url),
                reference_outage.get(response.url),
            ):
                mismatches += 1
            if response.latency > budget + 1e-9:
                budget_violations += 1

        summary = report.summary()
        return {
            "requests": len(requests),
            "unique_urls": len(unique_urls),
            "workers": workers,
            "capacity_rps": capacity,
            "offered_rps": offered_rate,
            "overload": overload,
            "duration_s": duration,
            "budget_s": budget,
            "drain_at_s": drain_at,
            "report": summary,
            "terminated": len(report.responses),
            # Drain must refuse exactly the post-drain arrivals and
            # nothing else: admitted work is never abandoned.
            "post_drain_arrivals": sum(
                1 for request in requests if request.arrival >= drain_at
            ),
            "verdict_mismatches": mismatches,
            "budget_violations": budget_violations,
            "web_stalls": int(flaky_web.stats["stall"]),
            "breaker": {
                "opened": breaker.opened_count,
                "rejected_fast": breaker.stats["rejected"],
                "transitions": dict(sorted(breaker.transitions.items())),
            },
        }

    # ------------------------------------------------------------------
    # serving: tiered triage ladder vs the untriaged engine
    # ------------------------------------------------------------------
    def triage_model(
        self, max_fpr: float = 0.0, max_fnr: float = 0.0
    ) -> "TriageModel":
        """A tier-0 triage model fitted and calibrated on training URLs.

        The URL-lexical classifier trains on legTrain+phishTrain
        starting URLs (the same split every scenario2 experiment
        uses), then the two-sided confident band calibrates on the
        same validation URLs with the given error budgets.
        """
        from repro.serve import TriageModel

        train = self.dataset("legTrain") + self.dataset("phishTrain")
        urls = [page.snapshot.starting_url for page in train]
        classifier = UrlLexicalClassifier()
        classifier.fit_urls(urls, train.labels())
        return TriageModel.calibrate(
            classifier, urls, train.labels(),
            max_fpr=max_fpr, max_fnr=max_fnr,
        )

    def serving_tiered_benchmark(
        self,
        pages_per_class: int = 25,
        workers: int = 4,
        analysis_cost: float = 0.1,
        overload: float = 3.0,
        duration: float = 2.0,
        queue_limit: int = 32,
        max_fpr: float = 0.0,
        max_fnr: float = 0.0,
    ) -> dict:
        """Triage ladder vs untriaged engine on the same Zipf workload.

        Offers the identical ``overload``× request schedule to two
        engines over the clean web: the classic full-pipeline engine,
        and one fronted by a :class:`~repro.serve.TriageModel` (plus a
        short-TTL negative cache).  Tier 0 resolves the
        high-confidence majority in ``triage_cost`` simulated seconds
        without a page load, so the tiered engine's latency
        percentiles and sustained throughput beat the untriaged run,
        while every *escalated* verdict stays byte-identical to the
        offline reference — the claim this benchmark exists to pin.

        Also reports corpus-level precision/recall of both
        configurations over the workload's unique URLs (tier-0
        confident answers where triage fires, the full pipeline's
        verdict where it escalates), so threshold calibration that
        sacrificed accuracy for speed would show up immediately.
        """
        from repro.resilience import ManualClock, ResilientBrowser, RetryPolicy
        from repro.serve import (
            TIER_FULL,
            TIER_TRIAGE,
            AdmissionController,
            ServingEngine,
            TokenBucket,
            ZipfSampler,
            build_requests,
            constant_rate,
        )

        urls, labels = self._robustness_workload(pages_per_class)
        sampler = ZipfSampler(urls, exponent=1.1, seed=self.config.seed)
        capacity = workers / analysis_cost
        offered_rate = overload * capacity
        requests = build_requests(
            constant_rate(sampler, offered_rate, duration)
        )
        triage = self.triage_model(max_fpr=max_fpr, max_fnr=max_fnr)

        def _run(with_triage: bool):
            clock = ManualClock()
            browser = ResilientBrowser(
                self.world.web,
                policy=RetryPolicy(clock=clock, seed=self.config.seed),
                clock=clock,
            )
            engine = ServingEngine(
                self._resilient_pipeline(),
                browser,
                AdmissionController(
                    TokenBucket(rate=capacity, capacity=float(workers * 4)),
                    queue_limit=queue_limit,
                ),
                clock=clock,
                workers=workers,
                analysis_cost=analysis_cost,
                triage=triage if with_triage else None,
                negative_ttl=0.25 * duration if with_triage else None,
            )
            return engine.run(requests)

        def _side(report) -> dict:
            makespan = max(
                (response.finished for response in report.responses),
                default=0.0,
            )
            return {
                "report": report.summary(),
                "completed": report.completed_count,
                "throughput_rps": (
                    report.completed_count / makespan if makespan else 0.0
                ),
                "latency_p50": report.latency_percentile(0.50),
                "latency_p99": report.latency_percentile(0.99),
            }

        untriaged = _run(with_triage=False)
        tiered = _run(with_triage=True)

        # Escalated verdicts must be byte-identical to the offline
        # reference — triage may only skip work, never change it.
        unique_urls = sorted({request.url for request in requests})
        reference = self._offline_reference(
            unique_urls, search=self.world.search
        )
        escalated_mismatches = 0
        for response in tiered.responses:
            if not response.completed or response.tier != TIER_FULL:
                continue
            triple = (
                response.verdict,
                response.confidence,
                tuple(response.targets),
            )
            if triple != reference.get(response.url):
                escalated_mismatches += 1

        # Corpus-level blocking quality of each configuration: the
        # full pipeline everywhere vs tier-0-where-confident.
        pipeline = self._resilient_pipeline()

        def _blocked(verdict: str) -> bool:
            if verdict == "phish":
                return True
            if verdict == "suspicious":
                return pipeline.treat_suspicious_as_phish
            return False

        decisions = dict(zip(unique_urls, triage.decide_batch(unique_urls)))

        def _quality(tiered_path: bool) -> dict:
            true_positive = false_positive = false_negative = 0
            for url in unique_urls:
                decision = decisions[url]
                if tiered_path and decision.resolved:
                    blocked = decision.action == "phish"
                else:
                    blocked = _blocked(reference[url][0])
                if blocked and labels[url]:
                    true_positive += 1
                elif blocked:
                    false_positive += 1
                elif labels[url]:
                    false_negative += 1
            predicted = true_positive + false_positive
            actual = true_positive + false_negative
            return {
                "precision": (
                    true_positive / predicted if predicted else 1.0
                ),
                "recall": true_positive / actual if actual else 1.0,
            }

        tier0 = tiered.tier_counts().get(TIER_TRIAGE, 0)
        summary_tiered = _side(tiered)
        summary_untriaged = _side(untriaged)
        p50_speedup = (
            summary_untriaged["latency_p50"]
            / summary_tiered["latency_p50"]
            if summary_tiered["latency_p50"]
            else float("inf")
        )
        return {
            "requests": len(requests),
            "unique_urls": len(unique_urls),
            "workers": workers,
            "capacity_rps": capacity,
            "offered_rps": offered_rate,
            "overload": overload,
            "duration_s": duration,
            "triage": {
                "legit_threshold": triage.legit_threshold,
                "phish_threshold": triage.phish_threshold,
                "corpus_escalation_rate": triage.escalation_rate(
                    unique_urls
                ),
                "tier0_resolved": tier0,
                "tier0_share": tier0 / len(requests) if requests else 0.0,
            },
            "untriaged": summary_untriaged,
            "tiered": summary_tiered,
            "p50_speedup": p50_speedup,
            "throughput_gain": (
                summary_tiered["throughput_rps"]
                / summary_untriaged["throughput_rps"]
                if summary_untriaged["throughput_rps"]
                else float("inf")
            ),
            "escalated_verdict_mismatches": escalated_mismatches,
            "quality": {
                "untriaged": _quality(tiered_path=False),
                "tiered": _quality(tiered_path=True),
            },
        }

    # ------------------------------------------------------------------
    # quality observability: reference, drift scenario, monitored serve
    # ------------------------------------------------------------------
    def quality_reference(self):
        """Frozen training-time reference profile (cached).

        Classifier-score and per-feature-group-mean distributions over
        the scenario2 training matrix, sketched with the drift
        monitor's bin layout — the "healthy" yardstick every live
        window is compared against.
        """
        from repro.core.features.extractor import group_means
        from repro.obs.quality import ReferenceProfile

        if self._quality_ref is None:
            detector = self.detector("fall")
            X, _y = self.train_matrix()
            self._quality_ref = ReferenceProfile.from_training(
                detector.predict_proba(X), group_means(X)
            )
        return self._quality_ref

    def quality_drift_scenario(
        self,
        healthy: int = 120,
        drifted: int = 100,
        tick: float = 0.05,
    ) -> dict:
        """Deterministic drift scenario: healthy stream, then a wave.

        ``drifted`` should exceed the monitor's window capacity
        (chunk_size x chunks = 80 observations by default) so the
        sliding windows end up holding *only* wave traffic — a shorter
        wave leaves healthy observations in the window, diluting the
        measured divergence toward the thresholds.

        Phase 1 replays ``healthy`` training-matrix rows (sampled with
        a fixed seed, so the live windows match the frozen reference
        up to sampling noise) through an armed
        :class:`~repro.obs.quality.QualityMonitor` — no drift alert
        may fire.  Phase 2 feeds the :meth:`_drifted_snapshots`
        campaign wave: the score and feature-group windows diverge
        from the reference and the monitor must raise at least one
        drift alert.  Everything runs on a
        :class:`~repro.resilience.ManualClock`, so the same seed
        yields the same alert log byte for byte — the property the
        ``quality-smoke`` CI job asserts from artifacts alone.
        """
        from repro.core.features.extractor import group_means
        from repro.obs.quality import (
            BurnRateWindow,
            QualityMonitor,
            SloObjective,
        )
        from repro.resilience import ManualClock

        detector = self.detector("fall")
        reference = self.quality_reference()
        clock = ManualClock()
        monitor = QualityMonitor(
            reference=reference,
            objectives=(
                SloObjective(
                    name="degraded_verdicts",
                    kind="degraded_rate",
                    budget=0.05,
                    description="verdicts should rarely be degraded",
                ),
            ),
            windows=(
                BurnRateWindow(
                    "fast",
                    long_s=40 * tick,
                    short_s=8 * tick,
                    factor=4.0,
                ),
            ),
            clock=clock,
        )

        def _feed(matrix: np.ndarray) -> None:
            scores = detector.predict_proba(matrix)
            means = group_means(matrix)
            for index in range(matrix.shape[0]):
                clock.advance(tick)
                score = float(scores[index])
                monitor.observe_verdict(
                    score=score,
                    verdict=(
                        "phish" if score >= self.threshold
                        else "legitimate"
                    ),
                    groups={
                        name: float(values[index])
                        for name, values in means.items()
                    },
                )

        X, _y = self.train_matrix()
        rng = np.random.default_rng(self.config.seed + 4242)
        healthy_rows = X[rng.integers(X.shape[0], size=healthy)]
        _feed(healthy_rows)
        healthy_alerts = [dict(alert) for alert in monitor.alerts]

        snapshots, _skipped = self._drifted_snapshots(drifted)
        _feed(self.extractor.extract_many(snapshots))
        artifact = monitor.finish()
        drift_alerts = [
            alert for alert in monitor.firing_alerts
            if alert["kind"] == "drift"
        ]
        assert monitor.drift is not None
        return {
            "healthy_pages": healthy,
            "drifted_pages": drifted,
            "healthy_alerts": healthy_alerts,
            "drift_alerts": drift_alerts,
            "drifted_signals": monitor.drift.drifted_signals(),
            "artifact": artifact,
            "monitor": monitor,
        }

    def quality_serving_benchmark(
        self,
        pages_per_class: int = 12,
        workers: int = 4,
        analysis_cost: float = 0.1,
        overload: float = 2.0,
        duration: float = 2.0,
        queue_limit: int = 32,
        repeats: int = 1,
    ) -> dict:
        """Monitored vs unmonitored tiered serving on one workload.

        Offers the identical request schedule to two identically
        seeded tiered engines — one with an armed
        :class:`~repro.obs.quality.QualityMonitor`, one without — and
        checks the monitor changed nothing: every terminal response
        equal field for field.  The monitor carries one deliberately
        unmeetable latency objective (full-tier latency under a
        quarter of the simulated analysis cost), so the run also
        demonstrates a deterministic SLO burn-rate alert, alongside
        realistic objectives that must stay quiet.

        ``repeats`` interleaves extra baseline/monitored run pairs
        (each monitored repeat on a fresh throwaway monitor) and
        reports the min wall-clock seconds of each side; the returned
        alerts/artifact always come from the first monitored run.

        The overhead bound uses ``seconds_taps``: the engine's exact
        tap stream is captured once, then replayed into fresh monitors
        in a timed tight loop (min of several replays).  That isolates
        the monitor's marginal cost from engine-run jitter — end-to-end
        deltas at this scale are dominated by scheduler noise, and
        flipping one process between armed and unarmed engines also
        thrashes CPython's inline caches, which no real deployment does
        (a monitor is on or off for the process lifetime).
        """
        from repro.obs.quality import (
            BurnRateWindow,
            QualityMonitor,
            SloObjective,
        )
        from repro.resilience import (
            ManualClock,
            ResilientBrowser,
            RetryPolicy,
        )
        from repro.serve import (
            TIER_FULL,
            AdmissionController,
            ServingEngine,
            TokenBucket,
            ZipfSampler,
            build_requests,
            constant_rate,
        )

        urls, _labels = self._robustness_workload(pages_per_class)
        sampler = ZipfSampler(urls, exponent=1.1, seed=self.config.seed)
        capacity = workers / analysis_cost
        requests = build_requests(
            constant_rate(sampler, overload * capacity, duration)
        )
        triage = self.triage_model()

        def _run(monitor):
            clock = ManualClock()
            browser = ResilientBrowser(
                self.world.web,
                policy=RetryPolicy(clock=clock, seed=self.config.seed),
                clock=clock,
            )
            engine = ServingEngine(
                self._resilient_pipeline(),
                browser,
                AdmissionController(
                    TokenBucket(
                        rate=capacity, capacity=float(workers * 4)
                    ),
                    queue_limit=queue_limit,
                ),
                clock=clock,
                workers=workers,
                analysis_cost=analysis_cost,
                triage=triage,
                negative_ttl=0.25 * duration,
                quality=monitor,
            )
            return engine.run(requests)

        def _monitor():
            return QualityMonitor(
                reference=self.quality_reference(),
                objectives=(
                    SloObjective(
                        name="full_tier_latency",
                        kind="latency",
                        budget=0.05,
                        threshold=analysis_cost / 4,
                        tier=TIER_FULL,
                        description=(
                            "deliberately unmeetable: full-tier latency "
                            "under a quarter of the analysis cost"
                        ),
                    ),
                    SloObjective(
                        name="degraded_verdicts",
                        kind="degraded_rate",
                        budget=0.5,
                    ),
                    SloObjective(
                        name="escalation_agreement",
                        kind="escalation_mismatch",
                        budget=0.9,
                    ),
                    SloObjective(
                        name="memo_hit_floor",
                        kind="cache_hit",
                        budget=0.999,
                        store="memo",
                    ),
                ),
                windows=(
                    BurnRateWindow(
                        "fast",
                        long_s=0.25 * duration,
                        short_s=0.05 * duration,
                        factor=2.0,
                    ),
                ),
            )

        monitor = _monitor()
        baseline = monitored = None
        seconds: dict[str, list[float]] = {"baseline": [], "monitored": []}

        def _timed(side, run_monitor):
            # Collect before and pause the collector during the timed
            # region, so one side does not pay for garbage the other
            # side produced.
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                result = _run(run_monitor)
                seconds[side].append(time.perf_counter() - started)
            finally:
                gc.enable()
            return result

        for round_index in range(max(1, repeats)):
            round_monitor = monitor if round_index == 0 else _monitor()
            # Alternate which side runs first so warm-up and cache
            # effects cancel across rounds instead of favouring one.
            if round_index % 2 == 0:
                result = _timed("baseline", None)
                baseline = baseline if baseline is not None else result
                result = _timed("monitored", round_monitor)
                monitored = monitored if monitored is not None else result
            else:
                result = _timed("monitored", round_monitor)
                monitored = monitored if monitored is not None else result
                result = _timed("baseline", None)
                baseline = baseline if baseline is not None else result
        identical = baseline.responses == monitored.responses

        tap_log: list[tuple] = []

        class _TapLog:
            """Captures the engine's exact tap stream for replay."""

            def observe_response(self, response, budget=None, now=None):
                tap_log.append(("response", response, budget, now))

            def observe_cache(self, store, hit, now=None):
                tap_log.append(("cache", store, hit, now))

            def observe_escalation(self, mismatch, now=None):
                tap_log.append(("escalation", mismatch, now))

            def finish(self, now=None):
                tap_log.append(("finish", now))

        _run(_TapLog())

        def _replay_once() -> float:
            replay_monitor = _monitor()
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                for call in tap_log:
                    kind = call[0]
                    if kind == "response":
                        replay_monitor.observe_response(
                            call[1], budget=call[2], now=call[3]
                        )
                    elif kind == "cache":
                        replay_monitor.observe_cache(
                            call[1], call[2], now=call[3]
                        )
                    elif kind == "escalation":
                        replay_monitor.observe_escalation(
                            call[1], now=call[2]
                        )
                    else:
                        replay_monitor.finish(now=call[1])
                return time.perf_counter() - started
            finally:
                gc.enable()

        _replay_once()  # warm the replay path before timing it
        replays = [_replay_once() for _ in range(7)]

        slo_alerts = [
            alert for alert in monitor.firing_alerts
            if alert["kind"] == "slo"
        ]
        return {
            "requests": len(requests),
            "responses_identical": identical,
            "slo_alerts": slo_alerts,
            "report": monitored.summary(),
            "artifact": monitor.artifact(),
            "monitor": monitor,
            "seconds_baseline": min(seconds["baseline"]),
            "seconds_monitored": min(seconds["monitored"]),
            "seconds_taps": min(replays),
            "tap_events": len(tap_log),
        }

    # ------------------------------------------------------------------
    # observability: one fully traced + metered run
    # ------------------------------------------------------------------
    def observed_run(
        self,
        pages_per_class: int = 20,
        workers: int | None = None,
        backend: str = "thread",
        trace_out: str | None = None,
        metrics_out: str | None = None,
        clock=None,
    ) -> dict:
        """One end-to-end batch run with live tracing and metrics.

        Builds a :class:`~repro.obs.trace.Tracer` and
        :class:`~repro.obs.metrics.MetricsRegistry`, threads them
        through every instrumented layer — a breaker-guarded search
        engine, a :class:`~repro.resilience.ResilientBrowser`, the full
        :class:`~repro.core.pipeline.KnowYourPhish` pipeline — and
        analyzes the ext-robustness workload (English legitimate +
        phishTest starting URLs).  Analysis-cache counters are bridged
        into the registry at the end, then the span/metric artifacts are
        written when paths are given; ``repro obs report`` reconstructs
        per-stage timing, verdict tallies, cache hit rates and
        resilience counts from those files alone.

        ``clock`` (a :class:`~repro.resilience.Clock`) is injectable so
        tests can pin span durations; defaults to the monotonic system
        clock.  Verdicts are bit-identical to an uninstrumented run —
        observability never perturbs the pipeline.
        """
        from repro.core.pipeline import KnowYourPhish
        from repro.obs import (
            MetricsRegistry,
            Tracer,
            write_metrics_prometheus,
            write_spans_jsonl,
        )
        from repro.resilience import (
            CircuitBreaker,
            GuardedSearchEngine,
            ResilientBrowser,
            SearchUnavailableError,
        )

        tracer = Tracer(clock=clock)
        metrics = MetricsRegistry()
        urls, _labels = self._robustness_workload(pages_per_class)

        breaker = CircuitBreaker(
            failure_threshold=3,
            failure_types=(SearchUnavailableError,),
            name="search",
            metrics=metrics,
        )
        guarded = GuardedSearchEngine(self.world.search, breaker=breaker)
        identifier = TargetIdentifier(guarded, ocr=self.ocr)
        pipeline = KnowYourPhish(
            self.detector("fall"), identifier,
            tracer=tracer, metrics=metrics,
        )
        browser = ResilientBrowser(
            self.world.web, clock=clock, tracer=tracer, metrics=metrics
        )
        pool = (
            WorkerPool(workers=workers, backend=backend)
            if workers and workers > 1 else None
        )
        try:
            report = pipeline.analyze_many(urls, browser, pool=pool)
        finally:
            if pool is not None:
                pool.close()
        if self.cache is not None:
            self.cache.fill_metrics(metrics)

        result = report.summary()
        result["span_count"] = sum(1 for _ in tracer.iter_spans())
        result["breaker_opened"] = breaker.opened_count
        if trace_out:
            result["trace_out"] = str(write_spans_jsonl(tracer, trace_out))
        if metrics_out:
            result["metrics_out"] = str(
                write_metrics_prometheus(metrics, metrics_out)
            )
        result["tracer"] = tracer
        result["metrics"] = metrics
        return result
