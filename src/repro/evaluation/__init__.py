"""Evaluation harness reproducing Section VI experiment-by-experiment.

:class:`~repro.evaluation.runner.Lab` materialises the synthetic world
once and exposes one method per paper artefact (tables V-X, figures 2-6,
plus the Section VI-D and VII experiments).  Results are plain data
structures; :mod:`repro.evaluation.reporting` renders them as the ASCII
tables the benchmarks print.
"""

from repro.evaluation.reporting import format_curve, format_table
from repro.evaluation.runner import Lab

__all__ = ["Lab", "format_curve", "format_table"]
