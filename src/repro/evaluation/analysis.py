"""Error and feature analysis (the paper's Section VII-A/B discussion).

Two analyses back the paper's discussion section:

* **Misclassification analysis** — Section VII-B attributes most
  misclassified legitimate pages (>50%) to term-extraction pathologies:
  long concatenated domain names, digit/hyphen-separated short brands,
  abbreviations — plus parked domains and near-empty pages.  Our corpus
  labels every legitimate page with its generation *kind*, so the same
  attribution is computed exactly.
* **Feature-group importance** — which of f1..f5 the trained ensemble
  actually leans on, aggregated from split counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.detector import PhishingDetector
from repro.core.features.extractor import FEATURE_SET_NAMES, feature_set_mask
from repro.corpus.datasets import Dataset, LabeledPage

#: Legitimate-site kinds whose domain names defeat term extraction —
#: the paper's "term issue" population (Section VII-B).
TERM_ISSUE_KINDS = frozenset({"longword", "hyphen", "shortbrand", "abbrev"})

#: Kinds the paper separately calls out as phish-lookalikes.
DEGENERATE_KINDS = frozenset({"parked", "minimal"})


@dataclass
class MisclassificationReport:
    """Breakdown of a detector's false positives by page kind."""

    total_legitimate: int
    false_positives: list[LabeledPage] = field(default_factory=list)
    kind_counts: Counter = field(default_factory=Counter)

    @property
    def fp_count(self) -> int:
        """Number of legitimate pages flagged as phishing."""
        return len(self.false_positives)

    @property
    def fpr(self) -> float:
        """False positive rate over the analysed dataset."""
        if not self.total_legitimate:
            return 0.0
        return self.fp_count / self.total_legitimate

    @property
    def term_issue_share(self) -> float:
        """Share of FPs caused by term-extraction pathologies."""
        if not self.false_positives:
            return 0.0
        hits = sum(
            self.kind_counts[kind] for kind in TERM_ISSUE_KINDS
        )
        return hits / self.fp_count

    @property
    def degenerate_share(self) -> float:
        """Share of FPs that are parked/near-empty pages."""
        if not self.false_positives:
            return 0.0
        hits = sum(self.kind_counts[kind] for kind in DEGENERATE_KINDS)
        return hits / self.fp_count

    @property
    def hard_case_share(self) -> float:
        """Share of FPs with *any* known-hard characteristic."""
        return self.term_issue_share + self.degenerate_share


def misclassified_legitimate(
    detector: PhishingDetector,
    dataset: Dataset,
    features: np.ndarray | None = None,
) -> MisclassificationReport:
    """Classify a legitimate dataset, attribute every false positive.

    ``features`` may carry a precomputed full feature matrix to avoid
    re-extraction.
    """
    if any(page.label != 0 for page in dataset):
        raise ValueError("misclassified_legitimate expects a legitimate-only dataset")
    if features is None:
        features = detector.extractor.extract_many(
            page.snapshot for page in dataset
        )
    predictions = detector.predict(features)
    report = MisclassificationReport(total_legitimate=len(dataset))
    for page, flagged in zip(dataset, predictions):
        if flagged:
            report.false_positives.append(page)
            report.kind_counts[page.kind] += 1
    return report


def missed_phish(
    detector: PhishingDetector,
    dataset: Dataset,
    features: np.ndarray | None = None,
) -> Counter:
    """False negatives of a phishing dataset, counted by hosting mode."""
    if any(page.label != 1 for page in dataset):
        raise ValueError("missed_phish expects a phishing-only dataset")
    if features is None:
        features = detector.extractor.extract_many(
            page.snapshot for page in dataset
        )
    predictions = detector.predict(features)
    misses: Counter = Counter()
    for page, flagged in zip(dataset, predictions):
        if not flagged:
            misses[page.kind] += 1
    return misses


def feature_group_importances(detector: PhishingDetector) -> dict[str, float]:
    """Aggregate the ensemble's split importances per feature group.

    Only meaningful for detectors trained on ``fall``; raises otherwise
    (a masked detector's importances do not map back to groups).
    """
    if detector.feature_set != "fall":
        raise ValueError(
            "group importances require a detector trained on 'fall', "
            f"got {detector.feature_set!r}"
        )
    importances = detector.model.feature_importances()
    groups = {}
    for name in ("f1", "f2", "f3", "f4", "f5"):
        mask = feature_set_mask(name)
        groups[name] = float(importances[mask].sum())
    return groups


def top_features(detector: PhishingDetector, count: int = 10) -> list[tuple[str, float]]:
    """The ``count`` most-used features of a trained detector, by name."""
    importances = detector.model.feature_importances()
    names = np.asarray(detector.extractor.feature_names)[detector.mask]
    order = np.argsort(-importances)[:count]
    return [(str(names[index]), float(importances[index])) for index in order]


def assert_valid_group(name: str) -> None:
    """Validate a feature-set name (re-export convenience for callers)."""
    if name not in FEATURE_SET_NAMES:
        raise ValueError(f"unknown feature set {name!r}")
