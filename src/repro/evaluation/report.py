"""Reproduction report compiler.

Collects the artefacts the benchmark suite rendered into
``benchmarks/results/`` and assembles one Markdown report — the measured
side of EXPERIMENTS.md, regenerated from whatever the latest benchmark
run produced.
"""

from __future__ import annotations

from pathlib import Path

#: Section order and titles; unknown files are appended alphabetically.
_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table5_datasets", "Table V — dataset description"),
    ("table6_languages", "Table VI — accuracy across six languages"),
    ("table7_feature_sets", "Table VII / Fig. 2 — accuracy per feature set"),
    ("fig3_precision_recall", "Fig. 3 — precision vs recall per language"),
    ("fig4_roc_languages", "Fig. 4 — ROC per language"),
    ("fig5_roc_feature_sets", "Fig. 5 — ROC per feature set"),
    ("fig6_scalability", "Fig. 6 — performance vs scale"),
    ("table8_timing", "Table VIII — processing time"),
    ("table9_target_id", "Table IX — target identification"),
    ("table10_comparison", "Table X — baseline comparison"),
    ("sec6d_fp_filtering", "§VI-D — false-positive filtering"),
    ("sec7_ip_urls", "§VII-B — IP-based URLs"),
    ("sec7_misclassification", "§VII-B — misclassified-legit attribution"),
    ("sec7_evasion", "§VII-C — evasion techniques"),
    ("ablation_threshold", "Ablation — discrimination threshold"),
    ("ablation_keyterm_count", "Ablation — keyterm count N"),
    ("ablation_hellinger_vs_jaccard", "Ablation — Hellinger vs Jaccard"),
    ("ablation_control_partition", "Ablation — control partition"),
    ("ext_blacklist_exposure", "Extension — blacklist-delay exposure"),
    ("ext_model_choice", "Extension — model choice"),
    ("ext_temporal_drift", "Extension — temporal drift"),
)


def compile_report(results_dir: str | Path) -> str:
    """Assemble a Markdown report from a benchmark results directory.

    Raises :class:`FileNotFoundError` when the directory does not exist
    or holds no artefacts (run the benchmarks first).
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    available = {path.stem: path for path in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise FileNotFoundError(
            f"no artefacts in {results_dir}; "
            "run `pytest benchmarks/ --benchmark-only` first"
        )

    lines = [
        "# Know Your Phish — measured reproduction artefacts",
        "",
        "Regenerated from the latest `pytest benchmarks/ --benchmark-only`",
        "run.  Paper-vs-measured commentary lives in EXPERIMENTS.md.",
        "",
    ]
    seen: set[str] = set()
    for stem, title in _SECTIONS:
        path = available.get(stem)
        if path is None:
            continue
        seen.add(stem)
        lines += [f"## {title}", "", "```",
                  path.read_text().rstrip(), "```", ""]
    for stem in sorted(set(available) - seen):
        lines += [f"## {stem}", "", "```",
                  available[stem].read_text().rstrip(), "```", ""]
    return "\n".join(lines)
