"""Throughput layer: deterministic worker pools + content-keyed caches.

The reproduction's batch entry points
(:meth:`~repro.core.features.extractor.FeatureExtractor.extract_many`,
:meth:`~repro.core.pipeline.KnowYourPhish.analyze_many`, the evaluation
:class:`~repro.evaluation.runner.Lab`) accept a :class:`WorkerPool` to
fan per-page work out over threads or processes, and the feature
extractor accepts an :class:`AnalysisCache` memoizing term
distributions, f2 pair matrices and full feature vectors by snapshot
content hash.

Both are designed around one invariant: **throughput must never change
results**.  Pool maps return results in input order and equal the
serial run bit-for-bit; cache hits return copies of values computed by
the exact same code path as a miss.
"""

from repro.parallel.cache import (
    AnalysisCache,
    CacheCountsProbe,
    LruCache,
    snapshot_fingerprint,
)
from repro.parallel.executor import (
    BACKENDS,
    MAX_WORKERS,
    CounterProbe,
    WorkerPool,
    chunk_slices,
    default_workers,
)

__all__ = [
    "AnalysisCache",
    "BACKENDS",
    "CacheCountsProbe",
    "CounterProbe",
    "LruCache",
    "MAX_WORKERS",
    "WorkerPool",
    "chunk_slices",
    "default_workers",
    "snapshot_fingerprint",
]
