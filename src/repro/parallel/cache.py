"""Content-keyed memoization for the feature-extraction hot path.

The paper's deployment argument (Table VIII) needs feature computation
fast enough for in-browser use; at crawl scale the same page content is
re-analysed constantly (re-crawls, retries, evaluation re-runs).  This
module amortises that work:

* :func:`snapshot_fingerprint` — a stable content hash of a
  :class:`~repro.web.page.PageSnapshot` (its serialised form), so equal
  content maps to equal keys across processes and runs;
* :class:`LruCache` — a thread-safe, size-bounded LRU with hit/miss
  counters, the same eviction idiom as the add-on's
  :class:`~repro.addon.cache.VerdictCache` (minus the TTL: features are
  a pure function of content and never go stale);
* :class:`AnalysisCache` — one bundle of three keyed stores for the
  quantities worth memoizing per snapshot: the Table I term
  distributions, the 66-entry f2 pair matrix, and the full
  212-dimension feature vector.

Cached values are immutable or defensively copied, so a hit is
indistinguishable from a recomputation — bit-identical, by construction.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict

import numpy as np

from repro.web.page import PageSnapshot


def snapshot_fingerprint(snapshot: PageSnapshot) -> str:
    """Stable content hash of a snapshot (sha256 over canonical JSON).

    Two snapshots with equal serialised content (URLs, redirection
    chain, logged links, HTML, screenshot) share a fingerprint — even
    across processes, unlike ``id()``- or ``hash()``-based keys.
    """
    payload = json.dumps(
        snapshot.to_dict(), sort_keys=True, ensure_ascii=False,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LruCache:
    """A thread-safe, size-bounded LRU mapping with hit/miss counters.

    Parameters
    ----------
    max_entries:
        Maximum stored keys; least-recently-used entries are evicted.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object) -> object | None:
        """Return the cached value or ``None``, updating counters."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        """Store a value, evicting the oldest entry when full."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # Locks do not pickle; drop the lock so process-pool workers can
    # receive a copy of a warm cache (their fills stay worker-local).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class AnalysisCache:
    """Memoization bundle for per-snapshot analysis artefacts.

    Three independent LRU stores, all keyed by snapshot fingerprint
    (plus the term metric where the value depends on it):

    * ``features`` — full 212-dimension feature vectors;
    * ``pair_matrices`` — the f2 pairwise-distance block (66 values);
    * ``distributions`` — individual Table I term distributions.

    One cache belongs to one extractor configuration: feature vectors
    depend on the Alexa ranking and term metric, so sharing a cache
    between differently-configured extractors yields wrong hits.  The
    ``image`` distribution is never cached (it depends on the OCR
    engine, not only on content).

    Parameters
    ----------
    max_entries:
        Bound for the feature and pair-matrix stores; the distribution
        store holds up to 13 entries per snapshot and is bounded at
        ``16 * max_entries``.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.features = LruCache(max_entries)
        self.pair_matrices = LruCache(max_entries)
        self.distributions = LruCache(16 * max_entries)

    # ------------------------------------------------------------------
    def get_features(self, key: str) -> np.ndarray | None:
        """Cached feature vector (a defensive copy) or ``None``."""
        hit = self.features.get(key)
        return None if hit is None else hit.copy()

    def put_features(self, key: str, vector: np.ndarray) -> None:
        """Store a feature vector (copied, so later mutation is safe)."""
        self.features.put(key, np.array(vector, dtype=np.float64, copy=True))

    def get_pair_matrix(self, key: str) -> np.ndarray | None:
        """Cached f2 pair block (a defensive copy) or ``None``."""
        hit = self.pair_matrices.get(key)
        return None if hit is None else hit.copy()

    def put_pair_matrix(self, key: str, values: np.ndarray) -> None:
        """Store an f2 pair block."""
        self.pair_matrices.put(
            key, np.array(values, dtype=np.float64, copy=True)
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Flat hit/miss summary across all three stores."""
        out: dict[str, float] = {}
        for name, store in (
            ("features", self.features),
            ("pair_matrices", self.pair_matrices),
            ("distributions", self.distributions),
        ):
            out[f"{name}_entries"] = len(store)
            out[f"{name}_hits"] = store.hits
            out[f"{name}_misses"] = store.misses
            out[f"{name}_hit_rate"] = store.hit_rate
        return out

    def clear(self) -> None:
        """Drop every entry from every store."""
        self.features.clear()
        self.pair_matrices.clear()
        self.distributions.clear()
