"""Content-keyed memoization for the feature-extraction hot path.

The paper's deployment argument (Table VIII) needs feature computation
fast enough for in-browser use; at crawl scale the same page content is
re-analysed constantly (re-crawls, retries, evaluation re-runs).  This
module amortises that work:

* :func:`snapshot_fingerprint` — a stable content hash of a
  :class:`~repro.web.page.PageSnapshot` (its serialised form), so equal
  content maps to equal keys across processes and runs;
* :class:`LruCache` — a thread-safe, size-bounded LRU with hit/miss
  counters, the same eviction idiom as the add-on's
  :class:`~repro.addon.cache.VerdictCache` (minus the TTL: features are
  a pure function of content and never go stale);
* :class:`AnalysisCache` — one bundle of three keyed stores for the
  quantities worth memoizing per snapshot: the Table I term
  distributions, the 66-entry f2 pair matrix, and the full
  212-dimension feature vector.

Cached values are immutable or defensively copied, so a hit is
indistinguishable from a recomputation — bit-identical, by construction.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict

import numpy as np

from repro.web.page import PageSnapshot


def snapshot_fingerprint(snapshot: PageSnapshot) -> str:
    """Stable content hash of a snapshot (sha256 over canonical JSON).

    Two snapshots with equal serialised content (URLs, redirection
    chain, logged links, HTML, screenshot) share a fingerprint — even
    across processes, unlike ``id()``- or ``hash()``-based keys.
    """
    payload = json.dumps(
        snapshot.to_dict(), sort_keys=True, ensure_ascii=False,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LruCache:
    """A thread-safe, size-bounded LRU mapping with hit/miss counters.

    Parameters
    ----------
    max_entries:
        Maximum stored keys; least-recently-used entries are evicted.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object) -> object | None:
        """Return the cached value or ``None``, updating counters."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        """Store a value, evicting the oldest entry when full."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Current counter values (a snapshot, safe to diff later)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def merge_counts(self, other: "LruCache | dict[str, int]") -> None:
        """Fold another store's counters (or a delta dict) into this one.

        This is how process-backend workers report back: their pickled
        cache copy accumulates hits/misses/evictions that would
        otherwise be lost when the worker exits, so the caller merges
        the per-item counter *deltas* returned by
        :meth:`repro.parallel.WorkerPool.map_observed`.
        """
        delta = other.counts() if isinstance(other, LruCache) else other
        with self._lock:
            self.hits += int(delta.get("hits", 0))
            self.misses += int(delta.get("misses", 0))
            self.evictions += int(delta.get("evictions", 0))

    # Locks do not pickle; drop the lock so process-pool workers can
    # receive a copy of a warm cache (their fills stay worker-local).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class AnalysisCache:
    """Memoization bundle for per-snapshot analysis artefacts.

    Three independent LRU stores, all keyed by snapshot fingerprint
    (plus the term metric where the value depends on it):

    * ``features`` — full 212-dimension feature vectors;
    * ``pair_matrices`` — the f2 pairwise-distance block (66 values);
    * ``distributions`` — individual Table I term distributions.

    One cache belongs to one extractor configuration: feature vectors
    depend on the Alexa ranking and term metric, so sharing a cache
    between differently-configured extractors yields wrong hits.  The
    ``image`` distribution is never cached (it depends on the OCR
    engine, not only on content).

    Parameters
    ----------
    max_entries:
        Bound for the feature and pair-matrix stores; the distribution
        store holds up to 13 entries per snapshot and is bounded at
        ``16 * max_entries``.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.features = LruCache(max_entries)
        self.pair_matrices = LruCache(max_entries)
        self.distributions = LruCache(16 * max_entries)

    # ------------------------------------------------------------------
    def get_features(self, key: str) -> np.ndarray | None:
        """Cached feature vector (a defensive copy) or ``None``."""
        hit = self.features.get(key)
        return None if hit is None else hit.copy()

    def put_features(self, key: str, vector: np.ndarray) -> None:
        """Store a feature vector (copied, so later mutation is safe)."""
        self.features.put(key, np.array(vector, dtype=np.float64, copy=True))

    def get_pair_matrix(self, key: str) -> np.ndarray | None:
        """Cached f2 pair block (a defensive copy) or ``None``."""
        hit = self.pair_matrices.get(key)
        return None if hit is None else hit.copy()

    def put_pair_matrix(self, key: str, values: np.ndarray) -> None:
        """Store an f2 pair block."""
        self.pair_matrices.put(
            key, np.array(values, dtype=np.float64, copy=True)
        )

    # ------------------------------------------------------------------
    def _stores(self) -> tuple[tuple[str, LruCache], ...]:
        return (
            ("features", self.features),
            ("pair_matrices", self.pair_matrices),
            ("distributions", self.distributions),
        )

    def stats(self) -> dict[str, float]:
        """Flat hit/miss/eviction summary across all three stores."""
        out: dict[str, float] = {}
        for name, store in self._stores():
            out[f"{name}_entries"] = len(store)
            out[f"{name}_hits"] = store.hits
            out[f"{name}_misses"] = store.misses
            out[f"{name}_evictions"] = store.evictions
            out[f"{name}_hit_rate"] = store.hit_rate
        return out

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-store counter snapshot, diffable and mergeable."""
        return {name: store.counts() for name, store in self._stores()}

    def merge_counts(
        self, other: "AnalysisCache | dict[str, dict[str, int]]"
    ) -> None:
        """Fold another cache's counters (or a delta dict) into this one."""
        deltas = (
            other.counts() if isinstance(other, AnalysisCache) else other
        )
        for name, store in self._stores():
            delta = deltas.get(name)
            if delta:
                store.merge_counts(delta)

    def fill_metrics(self, metrics: object) -> None:
        """Bridge current counters into a metrics registry.

        ``metrics`` follows the :class:`repro.obs.metrics.MetricsRegistry`
        API (duck-typed to keep this package import-light).  Called at
        export time: counters land as ``cache_*_total{store=...}``.
        """
        inc = getattr(metrics, "inc")
        for name, store in self._stores():
            counts = store.counts()
            inc("cache_hits_total", counts["hits"], store=name)
            inc("cache_misses_total", counts["misses"], store=name)
            inc("cache_evictions_total", counts["evictions"], store=name)

    def clear(self) -> None:
        """Drop every entry from every store."""
        self.features.clear()
        self.pair_matrices.clear()
        self.distributions.clear()


class CacheCountsProbe:
    """A :meth:`~repro.parallel.WorkerPool.map_observed` probe for caches.

    Ships inside the task wrapper so that in a process-pool worker the
    probe's ``cache`` is the *same object* as the one the mapped
    function uses (pickle memoization preserves the shared reference);
    per-item counter deltas then merge back into the caller's cache,
    closing the hole where worker-side hits/misses were silently lost.
    """

    def __init__(self, cache: AnalysisCache) -> None:
        self.cache = cache

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Counter state before the mapped call."""
        return self.cache.counts()

    def delta(
        self, before: dict[str, dict[str, int]]
    ) -> dict[str, dict[str, int]]:
        """Counter growth since ``before`` (one item's contribution)."""
        after = self.cache.counts()
        return {
            name: {
                key: after[name][key] - before[name].get(key, 0)
                for key in after[name]
            }
            for name in after
        }

    def merge(self, delta: dict[str, dict[str, int]]) -> None:
        """Fold a worker-side delta into the caller's cache."""
        self.cache.merge_counts(delta)
