"""Deterministic worker pools for batch workloads.

:class:`WorkerPool` fans a pure function out over a list of items and
returns the results **in input order**, whatever order the backend
finished them in.  Three backends share one interface:

``serial``
    Runs in the calling thread; the reference behaviour every other
    backend must reproduce bit-for-bit.
``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Suited to
    workloads that release the GIL or that are dominated by cache hits;
    shares in-process state (caches, counters) with the caller.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor`.  True CPU
    parallelism; the callable and items must be picklable, and worker
    processes operate on *copies* of caller state — in particular,
    cache fills in a worker do not propagate back.

Determinism contract: for a pure function ``fn``, ``pool.map(fn, items)``
equals ``[fn(item) for item in items]`` regardless of backend, worker
count or scheduling.  Exceptions reproduce serial semantics too: the
exception of the *earliest* failing item is raised.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable

#: Backends accepted by :class:`WorkerPool`.
BACKENDS = ("serial", "thread", "process")

#: Hard ceiling on worker counts — beyond this the scheduling overhead of
#: the synthetic workloads dwarfs any win.
MAX_WORKERS = 32


def default_workers() -> int:
    """A sensible worker count for this machine (capped)."""
    return min(MAX_WORKERS, os.cpu_count() or 1)


class WorkerPool:
    """An order-preserving, deterministic map over a worker backend.

    Parameters
    ----------
    workers:
        Worker count; defaults to the CPU count (capped at
        :data:`MAX_WORKERS`).  Ignored by the ``serial`` backend.
    backend:
        One of :data:`BACKENDS`.

    The pool is reusable across :meth:`map` calls and usable as a
    context manager; :meth:`close` shuts the backend down.  Worker
    threads/processes are started lazily on the first :meth:`map`.
    """

    def __init__(
        self, workers: int | None = None, backend: str = "thread"
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = min(workers or default_workers(), MAX_WORKERS)
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:  # process
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item, returning results in input order.

        Equivalent to ``[fn(item) for item in items]`` for pure ``fn``;
        the earliest failing item's exception is raised (later items may
        or may not have been attempted, exactly as with
        :meth:`concurrent.futures.Executor.map`).
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.workers == 1 or len(items) == 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        # Executor.map yields results in submission order, so collecting
        # into a list restores the serial ordering regardless of which
        # worker finished first.
        return list(executor.map(fn, items))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the backend (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(backend={self.backend!r}, workers={self.workers})"
