"""Deterministic worker pools for batch workloads.

:class:`WorkerPool` fans a pure function out over a list of items and
returns the results **in input order**, whatever order the backend
finished them in.  Three backends share one interface:

``serial``
    Runs in the calling thread; the reference behaviour every other
    backend must reproduce bit-for-bit.
``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Suited to
    workloads that release the GIL or that are dominated by cache hits;
    shares in-process state (caches, counters) with the caller.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor`.  True CPU
    parallelism; the callable and items must be picklable, and worker
    processes operate on *copies* of caller state — in particular,
    cache fills in a worker do not propagate back.

Determinism contract: for a pure function ``fn``, ``pool.map(fn, items)``
equals ``[fn(item) for item in items]`` regardless of backend, worker
count or scheduling.  Exceptions reproduce serial semantics too: the
exception of the *earliest* failing item is raised.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Protocol, Sequence

#: Backends accepted by :class:`WorkerPool`.
BACKENDS = ("serial", "thread", "process")

#: Hard ceiling on worker counts — beyond this the scheduling overhead of
#: the synthetic workloads dwarfs any win.
MAX_WORKERS = 32


def default_workers() -> int:
    """A sensible worker count for this machine (capped)."""
    return min(MAX_WORKERS, os.cpu_count() or 1)


def chunk_slices(n_items: int, n_chunks: int) -> list[slice]:
    """Deterministic contiguous split of ``n_items`` into ``n_chunks``.

    Chunk sizes differ by at most one (the first ``n_items % n_chunks``
    chunks carry the extra item), every slice is non-empty, and
    concatenating the slices in order reproduces ``range(n_items)`` —
    the invariant that makes chunked dispatch order-preserving.
    """
    if n_items < 1:
        return []
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    slices = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


class CounterProbe(Protocol):
    """Observes counter-like state around :meth:`WorkerPool.map_observed`.

    The probe must be picklable *together with* the mapped function so
    that inside a process-pool worker ``snapshot``/``delta`` see the
    same objects the function mutates (pickle memoization within one
    task wrapper preserves shared references).  ``delta`` payloads must
    themselves be picklable; ``merge`` must be additive so per-item
    deltas can be folded back in any grouping.
    """

    def snapshot(self) -> Any:
        """State before one mapped call."""
        ...

    def delta(self, before: Any) -> Any:
        """State growth since ``before`` (one item's contribution)."""
        ...

    def merge(self, delta: Any) -> None:
        """Fold a worker-side delta into caller-side state."""
        ...


class _ObservedTask:
    """Pickles ``fn`` and its probes as one object graph per item.

    Returns ``(value, worker_pid, deltas)``: the pid lets the caller
    distinguish process-backend results (deltas must merge back — the
    worker mutated a *copy*) from thread/serial results (the worker
    already mutated shared state; merging would double-count).
    """

    def __init__(
        self, fn: Callable[[Any], Any], probes: Sequence[CounterProbe]
    ) -> None:
        self.fn = fn
        self.probes = tuple(probes)

    def __call__(self, item: Any) -> tuple[Any, int, list[Any]]:
        befores = [probe.snapshot() for probe in self.probes]
        value = self.fn(item)
        deltas = [
            probe.delta(before)
            for probe, before in zip(self.probes, befores)
        ]
        return value, os.getpid(), deltas


class WorkerPool:
    """An order-preserving, deterministic map over a worker backend.

    Parameters
    ----------
    workers:
        Worker count; defaults to the CPU count (capped at
        :data:`MAX_WORKERS`).  Ignored by the ``serial`` backend.
    backend:
        One of :data:`BACKENDS`.

    The pool is reusable across :meth:`map` calls and usable as a
    context manager; :meth:`close` shuts the backend down.  Worker
    threads/processes are started lazily on the first :meth:`map`.
    """

    def __init__(
        self, workers: int | None = None, backend: str = "thread"
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = min(workers or default_workers(), MAX_WORKERS)
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:  # process
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item, returning results in input order.

        Equivalent to ``[fn(item) for item in items]`` for pure ``fn``;
        the earliest failing item's exception is raised (later items may
        or may not have been attempted, exactly as with
        :meth:`concurrent.futures.Executor.map`).
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.workers == 1 or len(items) == 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        # Executor.map yields results in submission order, so collecting
        # into a list restores the serial ordering regardless of which
        # worker finished first.
        return list(executor.map(fn, items))

    def map_observed(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        probes: Sequence[CounterProbe] = (),
    ) -> list[Any]:
        """:meth:`map`, plus counter reconciliation across backends.

        Each probe snapshots its counters around every call and, when
        the call ran in *another process* (its pid differs from the
        caller's), the per-item delta is merged back via
        :meth:`CounterProbe.merge` — in input order, so totals are
        schedule-independent.  On the serial and thread backends the
        probes' state is shared with ``fn`` and already up to date, so
        deltas are discarded rather than double-counted.  Result values
        are identical to :meth:`map`'s.
        """
        probes = tuple(probes)
        items = list(items)
        if not probes or not items:
            return self.map(fn, items)
        if self.backend == "serial" or self.workers == 1 or len(items) == 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        task = _ObservedTask(fn, probes)
        outcomes = list(executor.map(task, items))
        caller_pid = os.getpid()
        results: list[Any] = []
        for value, pid, deltas in outcomes:
            results.append(value)
            if pid != caller_pid:
                for probe, delta in zip(probes, deltas):
                    probe.merge(delta)
        return results

    def columnar_chunks(self, n_items: int) -> int:
        """Chunk count for a GIL-bound columnar pass over ``n_items``.

        Process workers run truly in parallel, so they get one chunk
        each.  Thread workers share the interpreter lock: fanning a
        CPU-bound columnar function out across them buys no parallelism
        and pays dispatch plus per-chunk fixed costs (fingerprinting,
        pool construction) several times over — a single chunk, run on
        one worker thread, is the fastest columnar shape there.  Pass
        the result as ``chunk_count`` to :meth:`map_chunks` /
        :meth:`map_observed_chunks`; functions that release the GIL can
        still chunk per worker explicitly.
        """
        if self.backend == "process":
            return max(1, min(self.workers, n_items))
        return 1

    def map_chunks(
        self,
        fn: Callable[[list], Any],
        items: Iterable[Any],
        chunk_count: int | None = None,
    ) -> list:
        """Apply a batch function over contiguous item chunks.

        ``fn`` takes a **list of items** and returns a sequence with one
        result per item (a list, or an array iterated row-wise).  The
        flattened results come back in input order.  This is the
        dispatch shape for columnar workloads: instead of paying one
        scheduling round-trip per item (the overhead that made
        per-page parallelism lose to serial), each worker receives one
        contiguous chunk and runs a single vectorised pass over it.

        Contract: ``fn`` must be *chunk-local pure* — ``list(fn(chunk))``
        equals the concatenation of ``list(fn([item]))`` over the chunk
        — which holds for batch extraction and batch analysis (memo
        pools and caches change timing, never values).  Under that
        contract the result equals ``list(fn(items))`` for every
        backend, worker count and chunking.

        ``chunk_count`` defaults to the worker count; the serial
        backend (or a single worker) runs the whole batch as one chunk,
        which is also the fastest columnar shape.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.workers == 1 or len(items) == 1:
            return list(fn(items))
        count = chunk_count if chunk_count is not None else self.workers
        chunks = [items[part] for part in chunk_slices(len(items), count)]
        if len(chunks) == 1:
            return list(fn(chunks[0]))
        executor = self._ensure_executor()
        results = list(executor.map(fn, chunks))
        return [value for chunk_result in results for value in chunk_result]

    def map_observed_chunks(
        self,
        fn: Callable[[list], Any],
        items: Iterable[Any],
        probes: Sequence[CounterProbe] = (),
        chunk_count: int | None = None,
    ) -> list[Any]:
        """:meth:`map_chunks`, plus counter reconciliation per chunk.

        The chunked analogue of :meth:`map_observed`: each probe
        snapshots its counters around every *chunk* and process-backend
        deltas merge back in chunk (hence input) order.  Totals equal
        the serial run's for additive counters, with one merge per
        chunk instead of one per item.
        """
        probes = tuple(probes)
        items = list(items)
        if not probes or not items:
            return self.map_chunks(fn, items, chunk_count=chunk_count)
        if self.backend == "serial" or self.workers == 1 or len(items) == 1:
            return list(fn(items))
        count = chunk_count if chunk_count is not None else self.workers
        chunks = [items[part] for part in chunk_slices(len(items), count)]
        if len(chunks) == 1:
            return list(fn(chunks[0]))
        executor = self._ensure_executor()
        task = _ObservedTask(fn, probes)
        outcomes = list(executor.map(task, chunks))
        caller_pid = os.getpid()
        results: list[Any] = []
        for chunk_result, pid, deltas in outcomes:
            results.extend(chunk_result)
            if pid != caller_pid:
                for probe, delta in zip(probes, deltas):
                    probe.merge(delta)
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the backend (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(backend={self.backend!r}, workers={self.workers})"
