"""pyproject-driven configuration for ``repro.lint``.

Configuration lives under ``[tool.repro-lint]`` in ``pyproject.toml``;
every key has a safe default so the linter also works on bare trees.
Recognised keys::

    [tool.repro-lint]
    paths = ["src", "tests"]          # default CLI targets
    select = ["PHL"]                  # rule-code prefixes to enable
    ignore = []                       # rule-code prefixes to disable
    exclude = ["build/*"]             # path globs never linted
    clock-exempt = ["*/resilience/clock.py"]   # PHL102 allowlist
    instrumented-paths = ["*/obs/*"]           # PHL106 scope
    contract-golden = "tests/data/golden_features.json"
    baseline = ".phl-baseline.json"   # optional baseline file
    flow-blocking = ["*browser.load"] # PHL501 blocking-call patterns
    taxonomy-paths = ["src/*/resilience/*"]  # PHL503 guarded paths
    taxonomy-bases = ["repro.resilience.errors.ResilienceError"]

    [tool.repro-lint.per-rule-exempt]
    PHL403 = ["*/cli.py", "tests/*"]  # per-code path allowlists

Path globs are matched with :mod:`fnmatch` against the file's
'/'-separated path relative to the config root, so ``tests/*`` matches
everything under ``tests/`` and ``*/cli.py`` matches any ``cli.py``.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: Modules whose wall-clock reads are legitimate by design (PHL102):
#: the clock abstraction itself has to call the real timers somewhere.
DEFAULT_CLOCK_EXEMPT = ("*/resilience/clock.py",)

#: Modules wired into the observability layer (PHL106): span durations
#: and stage timings there must come from the tracer's injected
#: ``repro.resilience.clock.Clock`` — a direct ``time.perf_counter()``
#: would leak real elapsed time into span dumps that tests assert are
#: byte-identical under a ManualClock.
DEFAULT_INSTRUMENTED_PATHS = (
    "*/obs/*",
    "*/core/pipeline.py",
    "*/core/features/extractor.py",
    "*/ml/boosting.py",
    "*/resilience/batch.py",
    "*/resilience/browser.py",
    "*/web/browser.py",
)

#: Call tokens the flow rules treat as *blocking* (PHL501): matched
#: with fnmatch against both the ``receiver.attr`` spelling at the call
#: site and the import-resolved canonical name, so ``self._browser.load``
#: and ``browser.load`` both hit ``*browser.load``.
DEFAULT_FLOW_BLOCKING = (
    "*browser.load",
    "*browser.try_load",
    "*browser.navigate",
    "*search.query",
    "*search.result_rdns",
    "*pool.map",
    "*pool.map_observed",
    "*pool.map_chunks",
    "*pool.map_observed_chunks",
    "*policy.call",
    "time.sleep",
)

#: Paths whose raises must stay inside the error taxonomy (PHL503).
#: Scoped to ``src`` so test helpers may raise freely.
DEFAULT_TAXONOMY_PATHS = (
    "src/*/resilience/*",
    "src/*/serve/*",
)

#: Root classes of the error taxonomy (PHL503): raising any subclass —
#: or anything defined in a root's module — is classified, everything
#: else escapes.
DEFAULT_TAXONOMY_BASES = ("repro.resilience.errors.ResilienceError",)

#: Paths where ``print`` is the product, not a debugging leftover
#: (PHL403): CLI front-ends, tests, benchmarks and examples.
DEFAULT_PER_RULE_EXEMPT = {
    "PHL403": (
        "*/cli.py",
        "*/__main__.py",
        "tests/*",
        "benchmarks/*",
        "examples/*",
    ),
}


@dataclass
class LintConfig:
    """Resolved linter configuration."""

    root: Path = field(default_factory=Path.cwd)
    paths: tuple[str, ...] = ("src", "tests")
    select: tuple[str, ...] = ("PHL",)
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    clock_exempt: tuple[str, ...] = DEFAULT_CLOCK_EXEMPT
    instrumented_paths: tuple[str, ...] = DEFAULT_INSTRUMENTED_PATHS
    per_rule_exempt: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_PER_RULE_EXEMPT)
    )
    contract_golden: str | None = "tests/data/golden_features.json"
    baseline: str | None = None
    flow_blocking: tuple[str, ...] = DEFAULT_FLOW_BLOCKING
    taxonomy_paths: tuple[str, ...] = DEFAULT_TAXONOMY_PATHS
    taxonomy_bases: tuple[str, ...] = DEFAULT_TAXONOMY_BASES

    # ------------------------------------------------------------------
    def display_path(self, path: Path) -> str:
        """'/'-separated path relative to the root (for output/matching)."""
        try:
            relative = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            relative = path
        return relative.as_posix()

    def _matches(self, display: str, patterns: tuple[str, ...]) -> bool:
        return any(fnmatch(display, pattern) for pattern in patterns)

    def is_excluded(self, path: Path) -> bool:
        """True when ``path`` is excluded from linting entirely."""
        return self._matches(self.display_path(path), self.exclude)

    def is_clock_exempt(self, display: str) -> bool:
        """True when ``display`` may read the wall clock directly."""
        return self._matches(display, self.clock_exempt)

    def is_instrumented(self, display: str) -> bool:
        """True when ``display`` is part of the observability wiring."""
        return self._matches(display, self.instrumented_paths)

    def is_rule_exempt(self, code: str, display: str) -> bool:
        """True when ``code`` is allowlisted for this file."""
        patterns = self.per_rule_exempt.get(code, ())
        return self._matches(display, tuple(patterns))

    def is_taxonomy_path(self, display: str) -> bool:
        """True when raises in ``display`` must stay in the taxonomy."""
        return self._matches(display, self.taxonomy_paths)

    def golden_path(self) -> Path | None:
        """Absolute path of the feature-contract golden file, if set."""
        if self.contract_golden is None:
            return None
        return self.root / self.contract_golden


def _tuple(value: object, key: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def load_config(
    root: Path | None = None, pyproject: Path | None = None
) -> LintConfig:
    """Build a :class:`LintConfig` from ``pyproject.toml``.

    ``root`` defaults to the directory containing ``pyproject`` (or the
    current directory when no file is found); a missing file or a
    missing ``[tool.repro-lint]`` table yields the defaults.
    """
    if pyproject is None:
        base = (root or Path.cwd()).resolve()
        for candidate in (base, *base.parents):
            if (candidate / "pyproject.toml").is_file():
                pyproject = candidate / "pyproject.toml"
                break
    config = LintConfig(root=root or (pyproject.parent if pyproject else Path.cwd()))
    if pyproject is None or not pyproject.is_file():
        return config
    with pyproject.open("rb") as handle:
        payload = tomllib.load(handle)
    table = payload.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.repro-lint] must be a table")
    for key in ("paths", "select", "ignore", "exclude"):
        if key in table:
            setattr(config, key, _tuple(table[key], key))
    if "clock-exempt" in table:
        config.clock_exempt = _tuple(table["clock-exempt"], "clock-exempt")
    if "instrumented-paths" in table:
        config.instrumented_paths = _tuple(
            table["instrumented-paths"], "instrumented-paths"
        )
    if "flow-blocking" in table:
        config.flow_blocking = _tuple(table["flow-blocking"], "flow-blocking")
    if "taxonomy-paths" in table:
        config.taxonomy_paths = _tuple(
            table["taxonomy-paths"], "taxonomy-paths"
        )
    if "taxonomy-bases" in table:
        config.taxonomy_bases = _tuple(
            table["taxonomy-bases"], "taxonomy-bases"
        )
    if "contract-golden" in table:
        value = table["contract-golden"]
        if value is not None and not isinstance(value, str):
            raise ValueError("[tool.repro-lint] contract-golden must be a string")
        config.contract_golden = value
    if "baseline" in table:
        value = table["baseline"]
        if value is not None and not isinstance(value, str):
            raise ValueError("[tool.repro-lint] baseline must be a string")
        config.baseline = value
    exempt = table.get("per-rule-exempt", {})
    if exempt:
        if not isinstance(exempt, dict):
            raise ValueError("[tool.repro-lint] per-rule-exempt must be a table")
        merged = dict(config.per_rule_exempt)
        for code, patterns in exempt.items():
            merged[code] = _tuple(patterns, f"per-rule-exempt.{code}")
        config.per_rule_exempt = merged
    return config
