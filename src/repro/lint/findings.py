"""Finding model and inline-suppression parsing for ``repro.lint``.

A :class:`Finding` is one rule violation at one source location.  The
suppression syntax mirrors the established ``# noqa``/``# type:
ignore`` idiom but is namespaced so it cannot collide with other
tools::

    risky_call()  # phl: ignore[PHL102]
    other_call()  # phl: ignore[PHL101,PHL105]
    anything()    # phl: ignore

A bare ``# phl: ignore`` silences every rule on that line; the
bracketed form silences only the listed codes.  Suppressions apply to
the physical line a finding is reported on.

Only real ``#`` comments count: the source is tokenised, so the marker
inside a string or docstring (like the examples above) never registers
as a live suppression.  That also makes stale-suppression detection
(``--report-unused-suppressions``) meaningful — every parsed
suppression is one a developer actually wrote against a finding.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Matches the ignore marker with an optional ``[CODE,CODE]`` payload.
_SUPPRESSION_RE = re.compile(
    r"#\s*phl:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    rule_name: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line textual form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "rule": self.rule_name,
        }

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by the baseline mechanism.

        Deliberately excludes the line number so a baseline survives
        unrelated edits that shift code up or down a file.
        """
        return (self.path, self.code, self.message)


def parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to their suppressed rule codes.

    ``None`` means *all* codes are suppressed on that line (the bare
    ``# phl: ignore`` form); a frozenset limits the suppression to the
    listed codes.  Only comment tokens are considered — the marker
    inside a string literal or docstring is documentation, not a
    suppression.  Tokenisation errors end the scan early (the parser
    reports the syntax error separately), keeping whatever was found.
    """
    out: dict[int, frozenset[str] | None] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            payload = match.group("codes")
            if payload is None:
                out[token.start[0]] = None
            else:
                codes = frozenset(
                    code.strip()
                    for code in payload.split(",")
                    if code.strip()
                )
                out[token.start[0]] = codes or None
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out


def is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    """True when an inline comment silences this finding."""
    if finding.line not in suppressions:
        return False
    codes = suppressions[finding.line]
    return codes is None or finding.code in codes
