"""PHL4xx — hygiene rules.

Classic Python footguns that have bitten reproducibility projects
before: mutable default arguments (state leaks between calls, so two
"identical" invocations diverge), bare ``except:`` (swallows
``KeyboardInterrupt``/``SystemExit`` and masks the resilience layer's
typed error taxonomy), and ``print`` in library code (results must flow
through return values and reports, not interleave nondeterministically
on stdout under the thread pool).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register
from repro.obs.trace import SPAN_NAME_PATTERN, SPAN_NAME_ROOTS

#: Constructor calls that produce fresh mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "collections.OrderedDict",
     "collections.defaultdict", "collections.deque", "collections.Counter"}
)


@register
class MutableDefaultRule(Rule):
    """PHL401: mutable default arguments."""

    code = "PHL401"
    name = "mutable-default-argument"
    summary = "function parameter defaults to a mutable container"
    rationale = (
        "Default values are evaluated once at definition time, so a "
        "mutable default is shared by every call: state leaks between "
        "invocations and identical inputs stop producing identical "
        "outputs. Default to None and construct inside the function."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default, ctx):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in `{node.name}(...)`; "
                        "default to None and build the container inside",
                    )

    def _is_mutable(self, node: ast.expr, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = ctx.imports.resolve(node.func)
            return resolved in _MUTABLE_FACTORIES
        return False


@register
class BareExceptRule(Rule):
    """PHL402: bare except clauses."""

    code = "PHL402"
    name = "bare-except"
    summary = "bare except clause catches everything"
    rationale = (
        "`except:` also catches KeyboardInterrupt/SystemExit and hides "
        "real failures behind generic fallbacks, defeating the typed "
        "error taxonomy in repro.resilience.errors. Catch the narrowest "
        "exception the handler can actually recover from (or at minimum "
        "`except Exception`)."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:`; catch a specific exception type "
                    "(at minimum `except Exception`)",
                )


@register
class PrintInLibraryRule(Rule):
    """PHL403: print() in library code."""

    code = "PHL403"
    name = "print-in-library"
    summary = "print() in library code (CLI/test/benchmark paths exempt)"
    rationale = (
        "Library results must flow through return values and report "
        "objects; prints from worker threads interleave "
        "nondeterministically and cannot be captured by callers. "
        "Front-end paths (`cli.py`, `__main__.py`, tests, benchmarks) "
        "are exempt via per-rule config."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        if ctx.config.is_rule_exempt(self.code, ctx.path):
            return
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and ctx.imports.resolve(node.func) == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code; return data or use the "
                    "reporting layer instead",
                )


@register
class SpanNameTaxonomyRule(Rule):
    """PHL404: span-name literals outside the documented taxonomy."""

    code = "PHL404"
    name = "span-name-taxonomy"
    summary = "span name literal does not match the documented taxonomy"
    rationale = (
        "Span names are the join key between trace dumps, the run "
        "report's per-stage timing table and the docs (DESIGN.md §8). "
        "Free-form names (`'Extract F1'`, `'extract-f1'`) fragment that "
        "key, so every literal passed to `.span(...)` must match "
        "`^[a-z_]+(\\.[a-z_{}0-9]+)*$` — lowercase dot-separated "
        "segments, `{}` allowed for templates like `extract.f{group}` — "
        "and a *dotted* name must root in one of the documented "
        "subsystems (`SPAN_NAME_ROOTS`): a dotted literal claims a "
        "place in the taxonomy, so an unknown root (`'frobnicate.run'`) "
        "is a typo or an undocumented subsystem, either of which "
        "should fail loudly."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and node.args
            ):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            if not SPAN_NAME_PATTERN.match(first.value):
                yield self.finding(
                    ctx,
                    first,
                    f"span name {first.value!r} is outside the "
                    "taxonomy; use lowercase dot-separated segments "
                    "(see SPAN_NAME_PATTERN and DESIGN.md §8)",
                )
            elif (
                "." in first.value
                and first.value.split(".", 1)[0] not in SPAN_NAME_ROOTS
            ):
                yield self.finding(
                    ctx,
                    first,
                    f"span name {first.value!r} roots outside the "
                    "documented taxonomy; dotted names must start "
                    "with one of "
                    f"{sorted(SPAN_NAME_ROOTS)} "
                    "(see SPAN_NAME_ROOTS and DESIGN.md §8)",
                )
