"""Rule modules for ``repro.lint``.

Importing this package registers every rule family with the global
registry (:mod:`repro.lint.registry`); rule modules self-register via
the ``@register`` decorator at import time.
"""

from repro.lint.rules import (
    concurrency,
    contract,
    determinism,
    flow,
    hygiene,
    meta,
)

__all__ = [
    "concurrency",
    "contract",
    "determinism",
    "flow",
    "hygiene",
    "meta",
]
