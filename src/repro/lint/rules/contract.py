"""PHL3xx — feature-contract rules.

The paper's core contract is a fixed 212-dimensional feature vector
partitioned into f1..f5 (Table III).  The golden regression file
``tests/data/golden_features.json`` freezes that layout (names, order,
per-set counts) alongside the frozen values; these rules cross-check
the *live* extractor registry against it on every lint run, so a
feature added, dropped, renamed or reordered fails CI before it can
silently invalidate trained models or the golden matrix.

Unlike the AST rules, this family runs once per lint invocation
(project scope) and loads real project state: the registry via
:func:`repro.core.features.extractor.feature_groups` and the golden
payload from the path configured as ``contract-golden``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Sequence

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register

#: The paper's total feature count (Table III).
EXPECTED_TOTAL = 212

#: Where registry-side problems are anchored in lint output.
REGISTRY_DISPLAY = "src/repro/core/features/extractor.py"

#: Registry rows: (set name, ordered feature names, declared count).
Groups = Sequence[tuple[str, tuple[str, ...], int]]


def live_feature_groups() -> Groups:
    """The registry of the importable ``repro.core.features`` package."""
    from repro.core.features.extractor import feature_groups

    return feature_groups()


def load_golden_contract(path: Path) -> dict[str, object] | None:
    """The golden payload, or None when unreadable/absent."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _duplicates(names: Sequence[str]) -> list[str]:
    seen: set[str] = set()
    dupes: set[str] = set()
    for name in names:
        if name in seen:
            dupes.add(name)
        seen.add(name)
    return sorted(dupes)


class _ContractRule(ProjectRule):
    """Shared loading/anchoring for the PHL3xx family."""

    def _finding(self, path: str, message: str) -> Finding:
        return Finding(
            path=path,
            line=1,
            col=1,
            code=self.code,
            message=message,
            rule_name=self.name,
        )

    def _inputs(
        self, config: LintConfig
    ) -> tuple[Groups, dict[str, object] | None, str]:
        golden_path = config.golden_path()
        payload = (
            None if golden_path is None else load_golden_contract(golden_path)
        )
        display = (
            config.contract_golden or "tests/data/golden_features.json"
        )
        return live_feature_groups(), payload, display


@register
class FeaturePartitionRule(_ContractRule):
    """PHL301: 212-feature total / f1..f5 partition drift."""

    code = "PHL301"
    name = "feature-partition-drift"
    summary = "registry total/partition drifts from the 212-feature contract"
    rationale = (
        "Table III fixes 212 features split f1..f5 "
        "(106/66/22/13/5). A module whose declared N_FEATURES disagrees "
        "with its name list, a total that is not 212, or per-set counts "
        "that differ from the golden contract mean every trained model "
        "and the golden matrix are silently invalid."
    )

    def check_project(self, config: LintConfig) -> Iterator[Finding]:
        """Check the live registry against the configured golden file."""
        groups, payload, display = self._inputs(config)
        yield from self.check(groups, payload, display)

    def check(
        self, groups: Groups, payload: dict[str, object] | None, display: str
    ) -> Iterator[Finding]:
        """Pure contract check over explicit registry/golden inputs."""
        total = 0
        for set_name, names, declared in groups:
            total += len(names)
            if len(names) != declared:
                yield self._finding(
                    REGISTRY_DISPLAY,
                    f"feature set {set_name} declares N_FEATURES={declared} "
                    f"but names {len(names)} features",
                )
        if total != EXPECTED_TOTAL:
            yield self._finding(
                REGISTRY_DISPLAY,
                f"registry has {total} features, the paper's contract "
                f"requires exactly {EXPECTED_TOTAL}",
            )
        if payload is None:
            yield self._finding(
                display,
                "feature-contract golden file is missing or unreadable; "
                "regenerate with tests/core/test_golden_features.py "
                "--regenerate",
            )
            return
        golden_total = payload.get("n_features")
        if golden_total != EXPECTED_TOTAL:
            yield self._finding(
                display,
                f"golden contract records n_features={golden_total!r}, "
                f"expected {EXPECTED_TOTAL}",
            )
        golden_counts = payload.get("group_counts")
        if not isinstance(golden_counts, dict):
            yield self._finding(
                display,
                "golden contract lacks a group_counts table; regenerate "
                "with tests/core/test_golden_features.py --regenerate",
            )
            return
        live_counts = {name: len(names) for name, names, _ in groups}
        if {k: int(v) for k, v in golden_counts.items()} != live_counts:
            yield self._finding(
                display,
                f"f1..f5 partition drift: registry {live_counts} vs "
                f"golden {golden_counts}",
            )


@register
class FeatureNameUniquenessRule(_ContractRule):
    """PHL302: duplicate feature names."""

    code = "PHL302"
    name = "duplicate-feature-name"
    summary = "feature names are not unique across the registry"
    rationale = (
        "Feature importance reports, masks and serialized models address "
        "features by name; a duplicate name makes two columns "
        "indistinguishable and silently mis-attributes importances."
    )

    def check_project(self, config: LintConfig) -> Iterator[Finding]:
        """Check the live registry against the configured golden file."""
        groups, payload, display = self._inputs(config)
        yield from self.check(groups, payload, display)

    def check(
        self, groups: Groups, payload: dict[str, object] | None, display: str
    ) -> Iterator[Finding]:
        """Pure uniqueness check over explicit registry/golden inputs."""
        live_names = [name for _, names, _ in groups for name in names]
        for dupe in _duplicates(live_names):
            yield self._finding(
                REGISTRY_DISPLAY,
                f"feature name {dupe!r} appears more than once in the "
                "registry",
            )
        golden_names = (payload or {}).get("feature_names")
        if isinstance(golden_names, list):
            for dupe in _duplicates([str(n) for n in golden_names]):
                yield self._finding(
                    display,
                    f"feature name {dupe!r} appears more than once in the "
                    "golden contract",
                )


@register
class FeatureOrderRule(_ContractRule):
    """PHL303: feature name/order drift vs the golden contract."""

    code = "PHL303"
    name = "feature-order-drift"
    summary = "registry feature names/order drift from the golden contract"
    rationale = (
        "Models are trained against column positions; reordering or "
        "renaming features keeps shapes valid while scrambling meaning. "
        "The concatenated f1..f5 name sequence must match the golden "
        "contract exactly, index by index."
    )

    def check_project(self, config: LintConfig) -> Iterator[Finding]:
        """Check the live registry against the configured golden file."""
        groups, payload, display = self._inputs(config)
        yield from self.check(groups, payload, display)

    def check(
        self, groups: Groups, payload: dict[str, object] | None, display: str
    ) -> Iterator[Finding]:
        """Pure ordering check over explicit registry/golden inputs."""
        if payload is None:
            return  # PHL301 already reports the missing file
        golden_names = payload.get("feature_names")
        if not isinstance(golden_names, list):
            yield self._finding(
                display,
                "golden contract lacks a feature_names list; regenerate "
                "with tests/core/test_golden_features.py --regenerate",
            )
            return
        live_names = [name for _, names, _ in groups for name in names]
        golden = [str(name) for name in golden_names]
        if live_names == golden:
            return
        for index, (have, want) in enumerate(zip(live_names, golden)):
            if have != want:
                yield self._finding(
                    display,
                    f"feature order drift at index {index}: registry has "
                    f"{have!r}, golden contract has {want!r}",
                )
                return
        yield self._finding(
            display,
            f"feature name count drift: registry has {len(live_names)} "
            f"names, golden contract has {len(golden)}",
        )
