"""PHL5xx — interprocedural flow rules.

These rules consume the project graph built by :mod:`repro.lint.graph`
(one symbol table + call graph per lint run) instead of a single
module's AST, so they can see the bug classes that span files: a
deadline accepted at the serving layer but dropped before the blocking
browser call three frames down, two classes that acquire each other's
locks in opposite orders, a resilience-guarded path raising an
exception the retry/quarantine machinery cannot classify, and a span
opened by hand that leaks past an early return.
"""

from __future__ import annotations

import builtins
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.graph import (
    FunctionSummary,
    ProjectGraph,
    build_lock_edges,
    find_lock_cycles,
)
from repro.lint.registry import GraphRule, register

#: Builtin exceptions whose escape from guarded paths is acceptable:
#: programming-error signals that should crash loudly rather than be
#: classified by the resilience taxonomy.
_ALLOWED_BUILTINS = frozenset(
    {
        "AssertionError",
        "KeyError",
        "IndexError",
        "NotImplementedError",
        "StopIteration",
        "TypeError",
        "ValueError",
    }
)

#: Every builtin exception name, to tell a builtin raise apart from a
#: raise of a local variable the graph cannot resolve.
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)


@register
class DeadlineDropRule(GraphRule):
    """PHL501: deadline accepted but dropped before blocking work."""

    code = "PHL501"
    name = "deadline-drop"
    summary = "function accepts a deadline but drops it before blocking work"
    rationale = (
        "A `deadline=` parameter is a promise that the caller's time "
        "budget bounds this call. A function that accepts one, never "
        "consults or forwards it, and still reaches a blocking callee "
        "(browser load, search query, pool dispatch — directly or "
        "through the call graph) silently unbounds the budget: the "
        "serving layer's deadline enforcement ends at that frame. "
        "Thread the deadline down to the blocking call, check it "
        "(`deadline.check(...)`), or drop the parameter."
    )

    def check_graph(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Findings for the project graph."""
        for qualname in sorted(graph.summaries):
            summary = graph.summaries[qualname]
            params = summary.symbol.deadline_params
            if not params or summary.deadline_used:
                continue
            if summary.blocking_token is not None:
                via = f"the blocking call `{summary.blocking_token}`"
            elif summary.transitively_blocking:
                via = f"blocking work via `{summary.blocking_via}`"
            else:
                continue
            param = sorted(params)[0]
            yield Finding(
                path=summary.path,
                line=summary.line,
                col=summary.col,
                code=self.code,
                message=(
                    f"`{qualname}` accepts `{param}` but never consults "
                    f"or forwards it, yet reaches {via}; thread the "
                    "deadline down or drop the parameter"
                ),
                rule_name=self.name,
            )


@register
class LockOrderCycleRule(GraphRule):
    """PHL502: cycle in the static lock-acquisition graph."""

    code = "PHL502"
    name = "lock-order-cycle"
    summary = "static lock-acquisition graph contains a cycle"
    rationale = (
        "If code holding lock A can acquire lock B while other code "
        "holding B can acquire A, two threads interleaving those paths "
        "deadlock. The static lock graph has an edge A->B whenever "
        "A-holding code may acquire B (nested `with` blocks, or a call "
        "under A into a function whose transitive lock set contains "
        "B); any cycle — including a non-reentrant self-edge — is a "
        "potential deadlock. Fix by imposing one global acquisition "
        "order, narrowing a critical section so the inner acquisition "
        "happens after release, or making a deliberate re-entry use an "
        "RLock."
    )

    def check_graph(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Findings for the project graph."""
        edges = build_lock_edges(graph)
        for cycle in find_lock_cycles(edges):
            members = set(cycle)
            witnesses = sorted(
                (
                    edge
                    for (held, acquired), edge in edges.items()
                    if held in members and acquired in members
                ),
                key=lambda e: (e.path, e.line, e.held, e.acquired),
            )
            if not witnesses:  # pragma: no cover - cycles imply edges
                continue
            first = witnesses[0]
            if len(cycle) == 1:
                detail = (
                    f"`{cycle[0]}` may re-acquire its own non-reentrant "
                    f"lock (via `{first.function}`)"
                )
            else:
                hops = "; ".join(
                    f"`{edge.function}` acquires `{edge.acquired}` while "
                    f"holding `{edge.held}` ({edge.path}:{edge.line})"
                    for edge in witnesses
                )
                detail = (
                    "lock-order cycle between "
                    + ", ".join(f"`{node}`" for node in cycle)
                    + f": {hops}"
                )
            yield Finding(
                path=first.path,
                line=first.line,
                col=1,
                code=self.code,
                message=detail + "; impose one global acquisition order",
                rule_name=self.name,
            )


@register
class TaxonomyEscapeRule(GraphRule):
    """PHL503: guarded path raises outside the error taxonomy."""

    code = "PHL503"
    name = "taxonomy-escape"
    summary = "resilience-guarded code raises outside the error taxonomy"
    rationale = (
        "The retry/quarantine/breaker machinery classifies failures "
        "through the repro.resilience.errors taxonomy: transient "
        "errors retry, permanent ones quarantine, everything else "
        "crashes the batch. A guarded path (under the configured "
        "taxonomy-paths globs) that raises an arbitrary exception "
        "bypasses that classification — the failure is neither retried "
        "nor quarantined, just propagated raw to the caller. Raise a "
        "taxonomy subclass (or one of the allowed programming-error "
        "builtins like ValueError/AssertionError) instead."
    )

    def check_graph(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Findings for the project graph."""
        bases = frozenset(config.taxonomy_bases)
        base_modules = tuple(
            base.rsplit(".", 1)[0] + "." for base in bases if "." in base
        )
        for qualname in sorted(graph.summaries):
            summary = graph.summaries[qualname]
            if not config.is_taxonomy_path(summary.path):
                continue
            for site in summary.raises:
                name = site.exc
                if name is None:
                    continue
                if self._allowed(name, graph, bases, base_modules, summary):
                    continue
                yield Finding(
                    path=summary.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"`{qualname}` raises `{name}` on a "
                        "resilience-guarded path; raise a subclass of "
                        f"{sorted(bases)[0].rsplit('.', 1)[1]} (or an "
                        "allowed builtin) so the failure is classified"
                    ),
                    rule_name=self.name,
                )

    def _allowed(
        self,
        name: str,
        graph: ProjectGraph,
        bases: frozenset[str],
        base_modules: tuple[str, ...],
        summary: FunctionSummary,
    ) -> bool:
        if name in bases or name.startswith(base_modules):
            return True
        if "." not in name:
            if name in _ALLOWED_BUILTINS:
                return True
            if name in _BUILTIN_EXCEPTIONS:
                return False
            # A bare name that is neither builtin nor imported may be a
            # class defined in the raising module; qualify it.
            qualified = f"{summary.symbol.module}.{name}"
            if qualified in graph.table.classes:
                return graph.table.is_subclass(qualified, bases) or any(
                    qualified.startswith(prefix) for prefix in base_modules
                )
            # Unresolvable (an exception variable): stay silent.
            return True
        if name in graph.table.classes:
            return graph.table.is_subclass(name, bases)
        # A dotted name outside the project (third-party): flag it.
        return False


@register
class SpanContextFlowRule(GraphRule):
    """PHL504: span started outside `with` reaches a return/raise."""

    code = "PHL504"
    name = "span-context-flow"
    summary = "span started outside `with` can leak past a return/raise"
    rationale = (
        "A span opened by calling `.span(...)` without entering it as a "
        "context manager must be closed on every path; any return or "
        "raise after the call can leave it open, which corrupts the "
        "tracer's span tree and the per-stage timing table derived "
        "from it. Use `with tracer.span(...):` so the span closes on "
        "all exits, exceptional ones included."
    )

    def check_graph(
        self, graph: ProjectGraph, config: LintConfig
    ) -> Iterator[Finding]:
        """Findings for the project graph."""
        for qualname in sorted(graph.summaries):
            summary = graph.summaries[qualname]
            for span in summary.span_starts:
                if not any(line > span.line for line in summary.exit_lines):
                    continue
                yield Finding(
                    path=summary.path,
                    line=span.line,
                    col=span.col,
                    code=self.code,
                    message=(
                        f"span started outside `with` in `{qualname}` "
                        "reaches a later return/raise; use "
                        "`with tracer.span(...):` so every exit closes it"
                    ),
                    rule_name=self.name,
                )
