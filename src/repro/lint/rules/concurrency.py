"""PHL2xx — concurrency rules.

The thread backend of :class:`repro.parallel.WorkerPool` shares
in-process state (the :class:`~repro.parallel.cache.AnalysisCache`
LRUs, counters) between workers.  That only stays correct because every
mutation of shared state happens under the owning object's lock.  These
rules enforce the discipline statically: in any class that owns a lock,
attribute mutations outside ``with self._lock:`` are flagged, and no
lock may be held across a ``yield`` (the consumer controls when — and
whether — the generator resumes, so the lock's hold time becomes
unbounded and re-entrant iteration deadlocks).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: Name tokens treated as locks (exact word or ``_``-suffixed, so
#: ``_lock``/``tree_lock`` match but ``clock`` does not).
_LOCK_TOKENS = ("lock", "mutex")

#: Methods allowed to touch shared state unguarded: construction and
#: pickling run strictly before/after any concurrent sharing.
_EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__getstate__", "__setstate__", "__reduce__"}
)

#: Container-method calls that mutate their receiver.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


def _is_lock_name(name: str) -> bool:
    stripped = name.lstrip("_").lower()
    return stripped in _LOCK_TOKENS or stripped.endswith(
        tuple(f"_{token}" for token in _LOCK_TOKENS)
    )


def _self_attribute(node: ast.expr) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _rooted_self_attribute(node: ast.expr) -> str | None:
    """``X`` when ``node`` is ``self.X`` possibly under subscripts."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attribute(node)


def _lock_attributes(cls: ast.ClassDef) -> frozenset[str]:
    """Names of lock-like attributes assigned anywhere in the class."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attribute(target)
                if attr is not None and _is_lock_name(attr):
                    locks.add(attr)
        elif isinstance(node, ast.AnnAssign):
            attr = _self_attribute(node.target)
            if attr is not None and _is_lock_name(attr):
                locks.add(attr)
    return frozenset(locks)


def _guards_lock(item: ast.withitem, locks: frozenset[str]) -> bool:
    expr = item.context_expr
    attr = _self_attribute(expr)
    if attr is not None:
        return attr in locks
    # ``with lock:`` on a local also counts — the heuristic is name-based.
    return isinstance(expr, ast.Name) and _is_lock_name(expr.id)


def _mutations(method: ast.AST) -> Iterator[tuple[ast.AST, str, str]]:
    """Yield (node, attribute, verb) for each shared-state mutation."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _rooted_self_attribute(target)
                if attr is not None:
                    yield node, attr, "assignment to"
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _rooted_self_attribute(node.target)
            if attr is not None:
                yield node, attr, "assignment to"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _rooted_self_attribute(target)
                if attr is not None:
                    yield node, attr, "deletion from"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                attr = _rooted_self_attribute(func.value)
                if attr is not None:
                    yield node, attr, f"`.{func.attr}()` on"


@register
class UnguardedSharedMutationRule(Rule):
    """PHL201: shared-state mutation outside the owning lock."""

    code = "PHL201"
    name = "unguarded-shared-mutation"
    summary = "lock-owning class mutates shared state outside its lock"
    rationale = (
        "A class that owns a lock (an attribute like `self._lock`) is "
        "declaring its state shared between threads; any attribute "
        "mutation outside `with self._lock:` is then a data race with "
        "the thread WorkerPool backend. Construction and pickling "
        "(`__init__`, `__getstate__`, `__setstate__`) run unshared and "
        "are exempt."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for cls in ctx.walk():
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attributes(cls)
            if not locks:
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                for node, attr, verb in _mutations(method):
                    if attr in locks:
                        continue
                    if self._guarded(node, ctx, locks, method):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"{verb} `self.{attr}` in `{cls.name}.{method.name}` "
                        f"outside `with self.{sorted(locks)[0]}:`",
                    )

    def _guarded(
        self,
        node: ast.AST,
        ctx: ModuleContext,
        locks: frozenset[str],
        method: ast.AST,
    ) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)) and any(
                _guards_lock(item, locks) for item in ancestor.items
            ):
                return True
            if ancestor is method:
                break
        return False


@register
class LockAcrossYieldRule(Rule):
    """PHL202: lock held across a generator yield."""

    code = "PHL202"
    name = "lock-across-yield"
    summary = "generator yields while holding a lock"
    rationale = (
        "`yield` inside `with self._lock:` suspends the generator with "
        "the lock held; the consumer decides when (or whether) it "
        "resumes, so the critical section's duration is unbounded and "
        "any same-lock access during iteration deadlocks. Copy the "
        "needed state under the lock, release it, then yield."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if not isinstance(node, (ast.Yield, ast.YieldFrom)):
                continue
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(ancestor, (ast.With, ast.AsyncWith)) and any(
                    _is_withitem_lock(item) for item in ancestor.items
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "yield while holding a lock; copy state under the "
                        "lock and yield after releasing it",
                    )
                    break


def _is_withitem_lock(item: ast.withitem) -> bool:
    """Name-based lock detection for arbitrary ``with`` expressions."""
    expr = item.context_expr
    attr_chain = expr
    while isinstance(attr_chain, ast.Attribute):
        if _is_lock_name(attr_chain.attr):
            return True
        attr_chain = attr_chain.value
    return isinstance(expr, ast.Name) and _is_lock_name(expr.id)
