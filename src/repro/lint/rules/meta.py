"""PHL6xx — meta rules about the linter's own annotations.

The findings themselves are produced by the engine (it is the only
component that knows which suppressions fired across every rule kind);
the rule class here carries the code's metadata so ``--list-rules`` and
``--explain PHL601`` work like for any other rule.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register


@register
class UnusedSuppressionRule(ProjectRule):
    """PHL601: a ``# phl: ignore`` comment that suppresses nothing."""

    code = "PHL601"
    name = "unused-suppression"
    summary = "suppression comment matches no finding (or unknown code)"
    rationale = (
        "A `# phl: ignore[...]` that no longer matches a finding is a "
        "standing invitation for the next real violation on that line "
        "to slip through silently, and an unknown code in the bracket "
        "means the suppression never worked at all. Reported only "
        "under `--report-unused-suppressions`; delete the stale "
        "comment or fix the code list."
    )
    scope = "engine"

    def check_project(self, config: LintConfig) -> Iterator[Finding]:
        """Nothing: the engine emits PHL601 from its suppression table."""
        return iter(())
