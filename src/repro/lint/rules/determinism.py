"""PHL1xx — determinism rules.

The project's reproducibility guarantees (bit-identical feature
matrices across serial/thread/process backends, cached vs. uncached
runs, and re-runs on other machines) only hold if no code path consults
ambient nondeterminism: unseeded RNGs, the wall clock, unordered
container iteration, per-process string hashing, or filesystem listing
order.  Each rule here flags one of those sources statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: RNG constructors that are deterministic only when explicitly seeded.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng"}
)

#: Calls that always consume hidden global RNG state (unseedable at the
#: call site), plus constructors that are nondeterministic by design.
_GLOBAL_STATE_RANDOM = frozenset(
    {
        "random.SystemRandom",
        "random.betavariate",
        "random.choice",
        "random.choices",
        "random.expovariate",
        "random.gauss",
        "random.getrandbits",
        "random.randbytes",
        "random.randint",
        "random.random",
        "random.randrange",
        "random.sample",
        "random.seed",
        "random.shuffle",
        "random.triangular",
        "random.uniform",
        "numpy.random.choice",
        "numpy.random.normal",
        "numpy.random.permutation",
        "numpy.random.rand",
        "numpy.random.randint",
        "numpy.random.randn",
        "numpy.random.random",
        "numpy.random.seed",
        "numpy.random.shuffle",
        "numpy.random.uniform",
    }
)

#: Wall-clock reads that make behaviour depend on when code runs.
#: Monotonic duration timers (``time.monotonic``/``time.perf_counter``)
#: are deliberately absent: measuring elapsed time for a report is fine,
#: branching on the date is not.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Stdlib timers that bypass the injectable clock.  In instrumented
#: modules even the monotonic duration timers are banned (unlike
#: PHL102): span durations must come from the tracer's clock so dumps
#: are byte-identical under a ManualClock.
_STDLIB_TIMERS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.time",
        "time.time_ns",
    }
)

#: Directory-listing calls whose order is filesystem-dependent.
_LISTING_FUNCTIONS = frozenset({"os.listdir", "os.scandir"})
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Wrappers that make listing order irrelevant (sorting, counting, or
#: collapsing into an unordered set).
_ORDER_NEUTRALIZERS = frozenset({"sorted", "len", "set", "frozenset"})


def _is_unseeded(call: ast.Call) -> bool:
    """True when a seedable constructor is called without a seed."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg in ("seed", "x", None):
            if keyword.arg is None:
                return False  # **kwargs — assume the seed is in there
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is None
    return True


@register
class UnseededRandomRule(Rule):
    """PHL101: unseeded RNG construction / global random state."""

    code = "PHL101"
    name = "unseeded-rng"
    summary = "RNG constructed without a seed, or global random state used"
    rationale = (
        "Unseeded `random.Random()` / `np.random.default_rng()` and the "
        "module-level `random.*` / legacy `np.random.*` functions draw "
        "from OS entropy or hidden global state, so two runs of the same "
        "pipeline diverge. Every RNG in this project must be constructed "
        "from an explicit seed that the caller controls."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _SEEDABLE_CONSTRUCTORS and _is_unseeded(node):
                yield self.finding(
                    ctx,
                    node,
                    f"`{resolved}()` without an explicit seed; pass a "
                    "caller-controlled seed so runs are reproducible",
                )
            elif resolved in _GLOBAL_STATE_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"`{resolved}()` uses hidden global RNG state; "
                    "construct a seeded Random/Generator instead",
                )


@register
class WallClockRule(Rule):
    """PHL102: wall-clock reads outside the clock module."""

    code = "PHL102"
    name = "direct-wall-clock"
    summary = "wall-clock read outside the injectable clock module"
    rationale = (
        "Retries, deadlines and breaker cooldowns take an injectable "
        "`repro.resilience.clock.Clock`; reading `time.time()` or "
        "`datetime.now()` directly reintroduces wall-clock coupling, "
        "making tests slow/flaky and behaviour time-of-day dependent. "
        "Only the clock module itself may touch the real timers."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        if ctx.config.is_clock_exempt(ctx.path):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"direct wall-clock call `{resolved}()`; inject a "
                    "`repro.resilience.clock.Clock` instead",
                )


@register
class DirectTimerInInstrumentationRule(Rule):
    """PHL106: stdlib timer calls inside instrumented modules."""

    code = "PHL106"
    name = "direct-timer-in-instrumentation"
    summary = "stdlib timer call in an observability-instrumented module"
    rationale = (
        "Modules wired into repro.obs (see `instrumented-paths` in "
        "[tool.repro-lint]) time their work through the tracer's "
        "injected `repro.resilience.clock.Clock`. A direct "
        "`time.perf_counter()`/`time.time()` there leaks real elapsed "
        "time into span dumps and metrics that tests assert are "
        "byte-identical under a ManualClock."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        if not ctx.config.is_instrumented(ctx.path):
            return
        if ctx.config.is_clock_exempt(ctx.path):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in _STDLIB_TIMERS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct timer call `{resolved}()` in an "
                    "instrumented module; read the injected clock "
                    "(`clock.now()`) so span dumps stay deterministic",
                )


def _is_set_expression(node: ast.expr, ctx: ModuleContext) -> bool:
    """True for set literals/comprehensions/constructors and unions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.imports.resolve(node.func)
        return resolved in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left, ctx) or _is_set_expression(
            node.right, ctx
        )
    return False


@register
class SetIterationRule(Rule):
    """PHL103: iteration directly over set expressions."""

    code = "PHL103"
    name = "unordered-set-iteration"
    summary = "iteration directly over a set expression"
    rationale = (
        "Set iteration order varies with insertion history and string "
        "hashing, so any ordered output fed from it (feature vectors, "
        "report rows, serialized caches) silently changes between "
        "processes. Wrap the set in `sorted(...)` at the iteration site."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for iterable in iters:
                if _is_set_expression(iterable, ctx):
                    yield self.finding(
                        ctx,
                        iterable,
                        "iterating directly over a set expression has "
                        "nondeterministic order; wrap it in `sorted(...)`",
                    )


@register
class DirectoryListingRule(Rule):
    """PHL104: unsorted directory listings."""

    code = "PHL104"
    name = "unsorted-dir-listing"
    summary = "directory listing consumed without sorted(...)"
    rationale = (
        "`os.listdir`, `os.scandir` and `Path.iterdir/glob/rglob` return "
        "entries in filesystem order, which differs across machines and "
        "runs. Any listing that feeds ordered processing must pass "
        "through `sorted(...)` first."
    )

    def _neutralized(self, node: ast.Call, ctx: ModuleContext) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Call):
                resolved = ctx.imports.resolve(ancestor.func)
                if resolved in _ORDER_NEUTRALIZERS:
                    return True
            elif isinstance(ancestor, ast.stmt):
                break
        return False

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            listing = resolved in _LISTING_FUNCTIONS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _LISTING_METHODS
                and resolved not in _LISTING_FUNCTIONS
            )
            if listing and not self._neutralized(node, ctx):
                label = resolved or node.func.attr  # type: ignore[union-attr]
                yield self.finding(
                    ctx,
                    node,
                    f"directory listing `{label}(...)` has filesystem-"
                    "dependent order; wrap it in `sorted(...)`",
                )


@register
class BuiltinHashRule(Rule):
    """PHL105: per-process-salted builtin hash()."""

    code = "PHL105"
    name = "salted-builtin-hash"
    summary = "builtin hash() used where a stable digest is needed"
    rationale = (
        "`hash()` on str/bytes is salted per process (PYTHONHASHSEED), "
        "so values differ between runs and workers — poison for cache "
        "keys, fingerprints or anything persisted. Use hashlib digests "
        "or zlib.crc32 as in `repro.parallel.cache.snapshot_fingerprint`."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Findings for one module's AST."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and ctx.imports.resolve(node.func) == "hash"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "builtin `hash()` is salted per process; use a "
                    "hashlib digest (or zlib.crc32) for stable keys",
                )
