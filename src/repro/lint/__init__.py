"""``repro.lint`` — project-invariant static analysis.

An AST-visitor lint framework that enforces, on every commit, the
structural invariants the test suite can only spot-check:

* **PHL1xx determinism** — seeded RNGs, injectable clocks, ordered
  iteration, stable hashing, sorted directory listings;
* **PHL2xx concurrency** — lock discipline in classes that share state
  with the thread :class:`~repro.parallel.WorkerPool` backend;
* **PHL3xx feature contract** — the paper's 212-feature f1..f5 layout
  cross-checked against ``tests/data/golden_features.json``;
* **PHL4xx hygiene** — mutable defaults, bare excepts, library prints;
* **PHL5xx flow** — interprocedural rules over the project call graph
  (:mod:`repro.lint.graph`): deadline drops before blocking work,
  lock-order cycles, exception-taxonomy escapes, span-context flow;
* **PHL6xx meta** — the linter's own annotations (unused suppressions,
  reported under ``--report-unused-suppressions``).

The static lock graph behind PHL502 is also enforced at runtime by the
lock-order sanitizer (:mod:`repro.lint.sanitizer`), a pytest fixture
that witnesses real acquisition orders during the serve/chaos suites.

Run ``python -m repro.lint src tests`` (exit 1 on findings; ``--jobs
N`` fans the per-file passes over worker processes, ``--format
github`` emits Actions annotations), suppress a single occurrence with
``# phl: ignore[PHLxxx]``, and configure via ``[tool.repro-lint]`` in
``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project_sources,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.registry import (
    RULES,
    GraphRule,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
)

__all__ = [
    "Finding",
    "GraphRule",
    "LintConfig",
    "ModuleContext",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "load_config",
]
