"""``repro.lint`` — project-invariant static analysis.

An AST-visitor lint framework that enforces, on every commit, the
structural invariants the test suite can only spot-check:

* **PHL1xx determinism** — seeded RNGs, injectable clocks, ordered
  iteration, stable hashing, sorted directory listings;
* **PHL2xx concurrency** — lock discipline in classes that share state
  with the thread :class:`~repro.parallel.WorkerPool` backend;
* **PHL3xx feature contract** — the paper's 212-feature f1..f5 layout
  cross-checked against ``tests/data/golden_features.json``;
* **PHL4xx hygiene** — mutable defaults, bare excepts, library prints.

Run ``python -m repro.lint src tests`` (exit 1 on findings), suppress a
single occurrence with ``# phl: ignore[PHLxxx]``, and configure via
``[tool.repro-lint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.registry import RULES, ModuleContext, ProjectRule, Rule, all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleContext",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
