"""Command-line front end: ``python -m repro.lint [paths]``.

Exit codes: 0 — clean; 1 — findings reported; 2 — usage or internal
error.  Configuration is read from the nearest ``pyproject.toml``
(``[tool.repro-lint]``) and can be overridden per invocation with
``--select``/``--ignore``/``--baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.lint import engine
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding
from repro.lint.registry import RULES, all_rules


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for `python -m repro.lint`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-invariant static analysis: determinism (PHL1xx), "
            "concurrency (PHL2xx), feature contract (PHL3xx), hygiene "
            "(PHL4xx), interprocedural flow (PHL5xx), lint meta "
            "(PHL6xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: from pyproject)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PREFIX",
        help="rule-code prefix to enable (repeatable; e.g. PHL1, PHL301)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="PREFIX",
        help="rule-code prefix to disable (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format (default: text; github emits Actions "
            "::error annotations)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan the per-file rule passes out over N worker processes "
            "(graph/project rules stay single-pass; findings are "
            "byte-identical to serial)"
        ),
    )
    parser.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help=(
            "also report `# phl: ignore` comments that suppress "
            "nothing (PHL601)"
        ),
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-code findings summary",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print a rule's rationale and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of accepted findings (overrides pyproject)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--config-root",
        metavar="DIR",
        help="directory whose pyproject.toml supplies configuration",
    )
    return parser


def _escape_annotation(value: str) -> str:
    """Escape a message for a GitHub Actions workflow command."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def _github_annotation(finding: Finding) -> str:
    """One ``::error`` workflow command for a finding."""
    return (
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col},title=repro.lint {finding.code}::"
        f"{_escape_annotation(finding.message)}"
    )


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name:28s} {rule.summary}")
    return "\n".join(lines)


def _explain(code: str) -> str | None:
    rule = RULES.get(code)
    if rule is None:
        return None
    return (
        f"{rule.code} ({rule.name}): {rule.summary}\n\n{rule.rationale}\n\n"
        f"Suppress a single occurrence with `# phl: ignore[{rule.code}]`."
    )


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    root = Path(args.config_root) if args.config_root else Path.cwd()
    config = load_config(root=root)
    if args.select:
        config.select = tuple(args.select)
    if args.ignore:
        config.ignore = tuple(config.ignore) + tuple(args.ignore)
    if args.baseline:
        config.baseline = args.baseline
    return config


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.explain:
        text = _explain(args.explain)
        if text is None:
            print(f"unknown rule code {args.explain!r}", file=sys.stderr)
            return 2
        print(text)
        return 0
    try:
        config = _resolve_config(args)
    except ValueError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2
    targets = args.paths or list(config.paths)
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.write_baseline:
        # Record raw findings (pre-baseline) so the new file is complete.
        config.baseline = None
        findings = engine.lint_paths(targets, config, jobs=args.jobs)
        engine.write_baseline(findings, Path(args.write_baseline))
        print(
            f"wrote baseline with {len(findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    findings = engine.lint_paths(
        targets,
        config,
        jobs=args.jobs,
        report_unused_suppressions=args.report_unused_suppressions,
    )
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=1))
    elif args.format == "github":
        for finding in findings:
            print(_github_annotation(finding))
    else:
        for finding in findings:
            print(finding.render())
    # Statistics ride along with any line-oriented format (GitHub
    # ignores lines that are not workflow commands); JSON stays pure.
    if args.statistics and args.format != "json":
        counts = Counter(f.code for f in findings)
        for code in sorted(counts):
            rule = RULES.get(code)
            label = rule.name if rule is not None else "?"
            print(f"{code} ({label}): {counts[code]}")
        print(f"total: {len(findings)} finding(s)")
    elif not findings and args.format == "text":
        print("clean: no findings")
    return 1 if findings else 0
