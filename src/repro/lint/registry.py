"""Rule base classes and the global rule registry.

Every rule has a stable code in a numbered family:

* ``PHL1xx`` — determinism (seeded randomness, injectable clocks,
  ordered iteration, stable hashing);
* ``PHL2xx`` — concurrency (lock discipline around shared state);
* ``PHL3xx`` — feature contract (the paper's 212-feature layout);
* ``PHL4xx`` — hygiene (classic Python footguns);
* ``PHL5xx`` — flow (interprocedural: deadline drops, lock-order
  cycles, exception-taxonomy escapes, span-context flow);
* ``PHL6xx`` — meta (the engine's own bookkeeping, e.g. unused
  suppressions).

Module rules inspect one file's AST via :class:`ModuleContext`; project
rules run once per lint invocation against repository-level state (the
feature registry vs. the golden contract); graph rules receive the
project-wide call graph built by :mod:`repro.lint.graph`.  Rules
self-register at import time through :func:`register`, so adding a rule
is one class in one module.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, TypeVar

from repro.lint.findings import Finding
from repro.lint.imports import ImportMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.config import LintConfig
    from repro.lint.graph import ProjectGraph


class ModuleContext:
    """Everything a module-scope rule may inspect for one file."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        config: "LintConfig | None" = None,
    ) -> None:
        from repro.lint.config import LintConfig

        self.path = path
        self.source = source
        self.tree = tree
        self.config = config if config is not None else LintConfig()
        self.imports = ImportMap(tree)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, nearest first, excluding ``node``."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def walk(self) -> Iterator[ast.AST]:
        """All AST nodes of the module."""
        return ast.walk(self.tree)


class Rule:
    """Base class: a module-scope rule checked against one file's AST."""

    code: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    scope: str = "module"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Findings for one module (override in module-scope rules)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` in ``ctx``'s file."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            rule_name=self.name,
        )


class ProjectRule(Rule):
    """Base class: a rule checked once per lint run, not per file."""

    scope = "project"

    def check_project(self, config: "LintConfig") -> Iterable[Finding]:
        """Findings for the repository described by ``config``."""
        raise NotImplementedError  # pragma: no cover - abstract


class GraphRule(ProjectRule):
    """Base class: a rule over the project-wide call graph (PHL5xx).

    The engine builds one :class:`~repro.lint.graph.ProjectGraph` per
    run and hands it to every graph rule, so :meth:`check_graph` is the
    method to override.  :meth:`check_project` is a standalone fallback
    (used when a graph rule runs outside :func:`repro.lint.lint_paths`)
    that builds a private graph from the configured paths.
    """

    scope = "graph"

    def check_graph(
        self, graph: "ProjectGraph", config: "LintConfig"
    ) -> Iterable[Finding]:
        """Findings for the project graph (override in graph rules)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def check_project(self, config: "LintConfig") -> Iterable[Finding]:
        """Standalone fallback: graph the configured paths, then check."""
        from repro.lint.engine import iter_python_files
        from repro.lint.graph import build_graph_from_paths

        files = iter_python_files(
            [config.root / path for path in config.paths], config
        )
        graph = build_graph_from_paths(files, config)
        return self.check_graph(graph, config)


#: All registered rules, keyed by code.
RULES: dict[str, Rule] = {}

_R = TypeVar("_R", bound=type[Rule])


def register(cls: _R) -> _R:
    """Class decorator: instantiate and index a rule by its code."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in code order."""
    return [RULES[code] for code in sorted(RULES)]


def rules_matching(
    select: Iterable[str], ignore: Iterable[str]
) -> list[Rule]:
    """Rules whose code starts with a selected prefix and no ignored one.

    ``select``/``ignore`` entries are code prefixes, so ``PHL1`` picks
    the whole determinism family and ``PHL103`` a single rule.
    """
    selected: Callable[[str], bool] = lambda code: any(
        code.startswith(prefix) for prefix in select
    )
    ignored: Callable[[str], bool] = lambda code: any(
        code.startswith(prefix) for prefix in ignore
    )
    return [
        rule
        for rule in all_rules()
        if selected(rule.code) and not ignored(rule.code)
    ]
