"""Runtime lock-order sanitizer: witness what the static graph proposed.

The static lock graph (:mod:`repro.lint.graph.locks`) is built from
syntax, so it can only *propose* a global acquisition order.  This
module witnesses the real one: :class:`LockSanitizer` patches
``threading.Lock``/``threading.RLock`` so that every lock created by
project code (selected by module-name prefix at construction time) is
wrapped in a thin proxy that reports acquisitions and releases to a
:class:`LockOrderWitness`.  The witness keeps a per-thread stack of
held lock *entities* — ``module.Class`` derived from the creation
frame, matching the static graph's naming — and counts every
``held -> acquired`` pair it observes.

:func:`verify_witness` then compares: a runtime edge that *inverts* a
static edge means the code acquired locks in the opposite order to the
one the whole rest of the project uses (a latent deadlock PHL502 would
flag if it could see through the dynamism); two entities observed in
both orders at runtime is a deadlock-in-waiting regardless of what the
static graph knew.  The pytest fixture in ``tests/conftest.py`` (gated
by ``PHL_LOCK_SANITIZER=1``) installs the sanitizer for the whole
session, writes the witness report to ``PHL_LOCK_WITNESS_OUT``, and
fails the run on any violation.

Overhead is one dict update per acquisition under an (uninstrumented)
guard lock — negligible next to the critical sections being guarded —
and zero when not installed.
"""

from __future__ import annotations

import json
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from types import FrameType, TracebackType
from typing import Any, Callable, Iterable

#: The real factories, captured at import time so the witness's own
#: guard lock and any uninstrumented code keep using them.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


@dataclass(frozen=True)
class OrderViolation:
    """One witnessed acquisition order the static graph forbids."""

    first: str
    second: str
    kind: str
    detail: str

    def to_dict(self) -> dict[str, str]:
        """JSON-friendly representation for the witness report."""
        return {
            "first": self.first,
            "second": self.second,
            "kind": self.kind,
            "detail": self.detail,
        }


class LockOrderWitness:
    """Records acquisition order edges across all threads."""

    def __init__(self) -> None:
        self._guard = _REAL_LOCK()
        self._held = threading.local()
        #: (held entity, acquired entity) -> observation count.
        self.edges: dict[tuple[str, str], int] = {}
        #: entity -> total acquisitions.
        self.acquisitions: dict[str, int] = {}

    def _stack(self) -> list[str]:
        stack: list[str] | None = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire(self, entity: str) -> None:
        """Record that the current thread acquired ``entity``."""
        stack = self._stack()
        with self._guard:
            self.acquisitions[entity] = self.acquisitions.get(entity, 0) + 1
            for held in stack:
                if held != entity:
                    key = (held, entity)
                    self.edges[key] = self.edges.get(key, 0) + 1
        stack.append(entity)

    def on_release(self, entity: str) -> None:
        """Record that the current thread released ``entity``."""
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == entity:
                del stack[position]
                break

    def observed_edges(self) -> list[tuple[str, str]]:
        """Every witnessed held->acquired pair, sorted."""
        with self._guard:
            return sorted(self.edges)

    def report(self) -> dict[str, Any]:
        """JSON-friendly dump of everything witnessed."""
        with self._guard:
            return {
                "acquisitions": dict(sorted(self.acquisitions.items())),
                "edges": [
                    {"held": held, "acquired": acquired, "count": count}
                    for (held, acquired), count in sorted(self.edges.items())
                ],
            }


class _InstrumentedLock:
    """Thin proxy reporting acquire/release to the witness."""

    def __init__(self, inner: Any, entity: str, witness: LockOrderWitness) -> None:
        self._inner = inner
        self._entity = entity
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._witness.on_acquire(self._entity)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._witness.on_release(self._entity)

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return bool(probe())
        # RLock on older Pythons has no locked(); a bare try-acquire
        # would succeed re-entrantly for the owning thread, so check
        # ownership first.
        owned = getattr(self._inner, "_is_owned", None)
        if owned is not None and owned():
            return True
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __enter__(self) -> "_InstrumentedLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<_InstrumentedLock {self._entity} of {self._inner!r}>"


def _entity_for_frame(
    frame: FrameType, include: tuple[str, ...]
) -> str | None:
    """Static-graph entity name for a lock created at ``frame``.

    ``Tracer.__init__`` in ``repro.obs.trace`` becomes
    ``repro.obs.trace.Tracer`` — the same ``module.Class`` entity the
    static lock graph uses.  Locks created outside the included module
    prefixes, or at module level (no owning class), return None and
    stay uninstrumented.
    """
    module = frame.f_globals.get("__name__", "")
    if not isinstance(module, str) or not module.startswith(include):
        return None
    code = frame.f_code
    qualname = getattr(code, "co_qualname", code.co_name)
    parts = [part for part in qualname.split(".") if part != "<locals>"]
    if len(parts) < 2:
        return None
    return f"{module}.{'.'.join(parts[:-1])}"


class LockSanitizer:
    """Context manager patching the threading lock factories."""

    def __init__(
        self,
        witness: LockOrderWitness,
        include: tuple[str, ...] = ("repro.",),
    ) -> None:
        self.witness = witness
        self.include = include
        self._installed = False

    def _factory(self, real: Callable[[], Any]) -> Callable[[], Any]:
        witness = self.witness
        include = self.include

        def make() -> Any:
            inner = real()
            frame = sys._getframe(1)
            entity = _entity_for_frame(frame, include)
            if entity is None:
                return inner
            return _InstrumentedLock(inner, entity, witness)

        return make

    def install(self) -> None:
        """Patch ``threading.Lock``/``threading.RLock``."""
        if self._installed:
            return
        threading.Lock = self._factory(_REAL_LOCK)  # type: ignore[assignment]
        threading.RLock = self._factory(_REAL_RLOCK)  # type: ignore[assignment]
        self._installed = True

    def uninstall(self) -> None:
        """Restore the real factories."""
        if not self._installed:
            return
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        self._installed = False

    def __enter__(self) -> "LockSanitizer":
        self.install()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.uninstall()


def verify_witness(
    witness: LockOrderWitness,
    static_edges: Iterable[tuple[str, str]],
) -> list[OrderViolation]:
    """Violations between witnessed orders and the static lock graph.

    * ``static-inversion`` — the runtime acquired B under A while the
      static graph only knows A-under-B: the witnessed path inverts the
      project's acquisition order.
    * ``runtime-mutual`` — both orders of the same pair were witnessed
      at runtime; two such threads interleaving is a deadlock whatever
      the static graph says.
    """
    static = set(static_edges)
    observed = witness.observed_edges()
    observed_set = set(observed)
    violations: list[OrderViolation] = []
    for first, second in observed:
        if first == second:
            continue
        if (second, first) in static and (first, second) not in static:
            violations.append(
                OrderViolation(
                    first=first,
                    second=second,
                    kind="static-inversion",
                    detail=(
                        f"runtime acquired `{second}` while holding "
                        f"`{first}`, but the static graph orders "
                        f"`{second}` before `{first}`"
                    ),
                )
            )
        if (second, first) in observed_set and first < second:
            violations.append(
                OrderViolation(
                    first=first,
                    second=second,
                    kind="runtime-mutual",
                    detail=(
                        f"`{first}` and `{second}` were each witnessed "
                        "held while acquiring the other"
                    ),
                )
            )
    return sorted(violations, key=lambda v: (v.kind, v.first, v.second))


def static_lock_edges(
    paths: Iterable[Path], root: Path | None = None
) -> set[tuple[str, str]]:
    """The static lock graph's edges for the given source trees."""
    from repro.lint.config import load_config
    from repro.lint.engine import iter_python_files
    from repro.lint.graph import build_graph_from_paths, build_lock_edges

    config = load_config(root=root)
    files = iter_python_files(list(paths), config)
    graph = build_graph_from_paths(files, config)
    return set(build_lock_edges(graph))


def write_witness_report(
    witness: LockOrderWitness,
    static_edges: Iterable[tuple[str, str]],
    violations: Iterable[OrderViolation],
    path: Path,
) -> None:
    """Write the order-witness report (CI uploads this artifact)."""
    payload = {
        "format": "phl-lock-witness/1",
        "static_edges": [
            {"held": held, "acquired": acquired}
            for held, acquired in sorted(set(static_edges))
        ],
        "violations": [violation.to_dict() for violation in violations],
        "witness": witness.report(),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
