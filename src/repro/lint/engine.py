"""The lint engine: file discovery, rule dispatch, baselines.

Entry points:

* :func:`lint_source` — lint one in-memory module (fixture tests);
* :func:`lint_file` — lint one file on disk;
* :func:`lint_paths` — lint files/trees plus the project-scope rules,
  returning findings sorted by (path, line, col, code).

Inline ``# phl: ignore[...]`` comments and the optional baseline file
are both applied here, so every entry point sees identical semantics.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, is_suppressed, parse_suppressions
from repro.lint.registry import ModuleContext, ProjectRule, Rule, rules_matching


def selected_rules(config: LintConfig) -> list[Rule]:
    """The rules enabled by the config's select/ignore prefixes."""
    return rules_matching(config.select, config.ignore)


def iter_python_files(
    targets: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; exclusion globs from the config
    are applied to files found either way.  The result is sorted so
    output order never depends on filesystem enumeration order — the
    linter practises what it preaches (PHL104).
    """
    out: set[Path] = set()
    for target in targets:
        path = Path(target)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not config.is_excluded(found):
                    out.add(found.resolve())
        elif path.suffix == ".py" and not config.is_excluded(path):
            out.add(path.resolve())
    return sorted(out)


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one module given as text (module-scope rules only)."""
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = [
            rule
            for rule in selected_rules(config)
            if not isinstance(rule, ProjectRule)
        ]
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="PHL000",
                message=f"syntax error: {exc.msg}",
                rule_name="syntax-error",
            )
        ]
    ctx = ModuleContext(path, source, tree, config=config)
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for rule in rules
        for finding in rule.check_module(ctx)
        if not is_suppressed(finding, suppressions)
    ]
    return sorted(findings)


def lint_file(
    path: Path, config: LintConfig, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint one file on disk (module-scope rules only)."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, path=config.display_path(path), config=config, rules=rules
    )


def lint_paths(
    targets: Sequence[str | Path],
    config: LintConfig | None = None,
    with_project_rules: bool = True,
) -> list[Finding]:
    """Lint files/trees plus (optionally) the project-scope rules."""
    config = config if config is not None else LintConfig()
    enabled = selected_rules(config)
    module_rules = [r for r in enabled if not isinstance(r, ProjectRule)]
    project_rules = [r for r in enabled if isinstance(r, ProjectRule)]
    findings: list[Finding] = []
    for path in iter_python_files(targets, config):
        findings.extend(lint_file(path, config, rules=module_rules))
    if with_project_rules:
        for rule in project_rules:
            findings.extend(rule.check_project(config))
    findings = apply_baseline(findings, config)
    return sorted(findings)


# ----------------------------------------------------------------------
# Baseline: accepted pre-existing findings, keyed by (path, code,
# message) so they survive line drift from unrelated edits.

def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Record current findings as the accepted baseline."""
    keys = sorted({finding.baseline_key() for finding in findings})
    payload = {
        "format": "phl-baseline/1",
        "findings": [
            {"path": path_, "code": code, "message": message}
            for path_, code, message in keys
        ],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The baseline's accepted finding keys (empty when unreadable)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return set()
    if not isinstance(payload, dict):
        return set()
    out: set[tuple[str, str, str]] = set()
    for entry in payload.get("findings", []):
        if isinstance(entry, dict):
            out.add(
                (
                    str(entry.get("path", "")),
                    str(entry.get("code", "")),
                    str(entry.get("message", "")),
                )
            )
    return out


def apply_baseline(
    findings: list[Finding], config: LintConfig
) -> list[Finding]:
    """Drop findings accepted by the configured baseline file."""
    if config.baseline is None:
        return findings
    accepted = load_baseline(config.root / config.baseline)
    if not accepted:
        return findings
    return [f for f in findings if f.baseline_key() not in accepted]
