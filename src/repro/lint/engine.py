"""The lint engine: file discovery, rule dispatch, baselines.

Entry points:

* :func:`lint_source` — lint one in-memory module (fixture tests);
* :func:`lint_file` — lint one file on disk;
* :func:`lint_project_sources` — run the graph rules over an in-memory
  set of modules (flow-rule fixture tests);
* :func:`lint_paths` — lint files/trees plus the project- and
  graph-scope rules, returning findings sorted by (path, line, col,
  code).

``lint_paths`` runs in three passes: the module rules per file (fanned
out over a process :class:`~repro.parallel.WorkerPool` when ``jobs >
1`` — results are sorted, so parallel output is byte-identical to
serial), then one project graph build feeding every
:class:`~repro.lint.registry.GraphRule`, then the remaining project
rules.  Inline ``# phl: ignore[...]`` comments and the optional
baseline file are applied centrally, so every entry point sees
identical semantics; with ``report_unused_suppressions`` the engine
additionally emits a PHL601 finding for every suppression comment that
silenced nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import json

from repro.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, is_suppressed, parse_suppressions
from repro.lint.graph import ModuleSource, build_graph
from repro.lint.registry import (
    RULES,
    GraphRule,
    ModuleContext,
    ProjectRule,
    Rule,
    rules_matching,
)


def selected_rules(config: LintConfig) -> list[Rule]:
    """The rules enabled by the config's select/ignore prefixes."""
    return rules_matching(config.select, config.ignore)


def iter_python_files(
    targets: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; exclusion globs from the config
    are applied to files found either way.  The result is sorted so
    output order never depends on filesystem enumeration order — the
    linter practises what it preaches (PHL104).
    """
    out: set[Path] = set()
    for target in targets:
        path = Path(target)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not config.is_excluded(found):
                    out.add(found.resolve())
        elif path.suffix == ".py" and not config.is_excluded(path):
            out.add(path.resolve())
    return sorted(out)


@dataclass
class ModuleScan:
    """Result of the module-rule pass over one file.

    Carries the suppression table and the lines whose suppressions
    actually fired, so the engine can both apply graph-rule
    suppressions centrally and report the stale ones.
    """

    display: str
    findings: list[Finding] = field(default_factory=list)
    suppressions: dict[int, frozenset[str] | None] = field(
        default_factory=dict
    )
    used_lines: set[int] = field(default_factory=set)
    parsed: bool = True


def _scan_module(
    source: str,
    display: str,
    config: LintConfig,
    rules: Iterable[Rule],
) -> tuple[ModuleScan, ast.Module | None]:
    """Run the module rules over one source text."""
    scan = ModuleScan(display=display)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        scan.parsed = False
        scan.findings.append(
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="PHL000",
                message=f"syntax error: {exc.msg}",
                rule_name="syntax-error",
            )
        )
        return scan, None
    ctx = ModuleContext(display, source, tree, config=config)
    scan.suppressions = parse_suppressions(source)
    for rule in rules:
        for finding in rule.check_module(ctx):
            if is_suppressed(finding, scan.suppressions):
                scan.used_lines.add(finding.line)
            else:
                scan.findings.append(finding)
    return scan, tree


def _module_rules(config: LintConfig) -> list[Rule]:
    return [
        rule
        for rule in selected_rules(config)
        if not isinstance(rule, ProjectRule)
    ]


def _scan_file_task(item: tuple[str, str, LintConfig]) -> ModuleScan:
    """Worker-side task for ``--jobs``: scan one file, module rules only.

    Top-level (picklable) so the process backend can ship it; the AST
    is dropped at the process boundary and re-parsed by the parent for
    the graph pass.
    """
    path_str, display, config = item
    source = Path(path_str).read_text(encoding="utf-8")
    scan, _ = _scan_module(source, display, config, _module_rules(config))
    return scan


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one module given as text (module-scope rules only)."""
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = _module_rules(config)
    scan, _ = _scan_module(source, path, config, rules)
    return sorted(scan.findings)


def lint_file(
    path: Path, config: LintConfig, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint one file on disk (module-scope rules only)."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, path=config.display_path(path), config=config, rules=rules
    )


def lint_project_sources(
    sources: Mapping[str, str],
    config: LintConfig | None = None,
    rules: Iterable[GraphRule] | None = None,
) -> list[Finding]:
    """Run the graph rules over an in-memory project (fixture tests).

    ``sources`` maps display paths to module text; the whole mapping is
    built into one project graph, mirroring what ``lint_paths`` does
    for on-disk trees.  Inline suppressions and per-rule path
    exemptions apply exactly as in the full engine.
    """
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = [
            rule
            for rule in selected_rules(config)
            if isinstance(rule, GraphRule)
        ]
    modules: list[ModuleSource] = []
    suppressions: dict[str, dict[int, frozenset[str] | None]] = {}
    for display in sorted(sources):
        source = sources[display]
        modules.append(
            ModuleSource(display=display, source=source, tree=ast.parse(source))
        )
        suppressions[display] = parse_suppressions(source)
    graph = build_graph(modules, config)
    findings = [
        finding
        for rule in rules
        for finding in rule.check_graph(graph, config)
        if not config.is_rule_exempt(finding.code, finding.path)
        and not is_suppressed(finding, suppressions.get(finding.path, {}))
    ]
    return sorted(findings)


def lint_paths(
    targets: Sequence[str | Path],
    config: LintConfig | None = None,
    with_project_rules: bool = True,
    jobs: int = 1,
    report_unused_suppressions: bool = False,
) -> list[Finding]:
    """Lint files/trees plus (optionally) the project/graph rules."""
    config = config if config is not None else LintConfig()
    enabled = selected_rules(config)
    module_rules = [r for r in enabled if not isinstance(r, ProjectRule)]
    graph_rules = [r for r in enabled if isinstance(r, GraphRule)]
    project_rules = [
        r
        for r in enabled
        if isinstance(r, ProjectRule) and not isinstance(r, GraphRule)
    ]
    files = iter_python_files(targets, config)
    displays = [config.display_path(path) for path in files]

    scans: list[ModuleScan] = []
    trees: dict[str, ModuleSource] = {}
    if jobs > 1 and len(files) > 1:
        from repro.parallel import WorkerPool

        items = [
            (str(path), display, config)
            for path, display in zip(files, displays)
        ]
        with WorkerPool(workers=jobs, backend="process") as pool:
            scans = pool.map(_scan_file_task, items)
    else:
        for path, display in zip(files, displays):
            source = path.read_text(encoding="utf-8")
            scan, tree = _scan_module(source, display, config, module_rules)
            scans.append(scan)
            if tree is not None:
                trees[display] = ModuleSource(
                    display=display, source=source, tree=tree
                )

    findings: list[Finding] = []
    for scan in scans:
        findings.extend(scan.findings)

    if with_project_rules and graph_rules:
        modules: list[ModuleSource] = []
        for path, display in zip(files, displays):
            cached = trees.get(display)
            if cached is not None:
                modules.append(cached)
                continue
            try:
                source = path.read_text(encoding="utf-8")
                modules.append(
                    ModuleSource(
                        display=display,
                        source=source,
                        tree=ast.parse(source),
                    )
                )
            except (OSError, SyntaxError):
                continue
        graph = build_graph(modules, config)
        scan_by_display = {scan.display: scan for scan in scans}
        for rule in graph_rules:
            for finding in rule.check_graph(graph, config):
                if config.is_rule_exempt(finding.code, finding.path):
                    continue
                scan = scan_by_display.get(finding.path)
                if scan is not None and is_suppressed(
                    finding, scan.suppressions
                ):
                    scan.used_lines.add(finding.line)
                    continue
                findings.append(finding)

    if with_project_rules:
        for rule in project_rules:
            findings.extend(rule.check_project(config))

    if report_unused_suppressions:
        findings.extend(_unused_suppression_findings(scans))

    findings = apply_baseline(findings, config)
    return sorted(findings)


def _unused_suppression_findings(
    scans: Iterable[ModuleScan],
) -> list[Finding]:
    """PHL601 findings for suppressions that silenced nothing."""
    known = set(RULES) | {"PHL000"}
    out: list[Finding] = []
    for scan in scans:
        for line in sorted(scan.suppressions):
            codes = scan.suppressions[line]
            unknown = sorted(
                code for code in (codes or ()) if code not in known
            )
            if unknown:
                message = (
                    "suppression references unknown rule code(s) "
                    + ", ".join(unknown)
                )
            elif line not in scan.used_lines:
                listed = (
                    "all rules" if codes is None else ", ".join(sorted(codes))
                )
                message = (
                    f"unused suppression ({listed}): no matching finding "
                    "on this line"
                )
            else:
                continue
            out.append(
                Finding(
                    path=scan.display,
                    line=line,
                    col=1,
                    code="PHL601",
                    message=message,
                    rule_name="unused-suppression",
                )
            )
    return out


# ----------------------------------------------------------------------
# Baseline: accepted pre-existing findings, keyed by (path, code,
# message) so they survive line drift from unrelated edits.

def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Record current findings as the accepted baseline."""
    keys = sorted({finding.baseline_key() for finding in findings})
    payload = {
        "format": "phl-baseline/1",
        "findings": [
            {"path": path_, "code": code, "message": message}
            for path_, code, message in keys
        ],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The baseline's accepted finding keys (empty when unreadable)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return set()
    if not isinstance(payload, dict):
        return set()
    out: set[tuple[str, str, str]] = set()
    for entry in payload.get("findings", []):
        if isinstance(entry, dict):
            out.add(
                (
                    str(entry.get("path", "")),
                    str(entry.get("code", "")),
                    str(entry.get("message", "")),
                )
            )
    return out


def apply_baseline(
    findings: list[Finding], config: LintConfig
) -> list[Finding]:
    """Drop findings accepted by the configured baseline file."""
    if config.baseline is None:
        return findings
    accepted = load_baseline(config.root / config.baseline)
    if not accepted:
        return findings
    return [f for f in findings if f.baseline_key() not in accepted]
