"""Alias-aware resolution of dotted names in a module's AST.

Rules match *canonical* dotted names (``numpy.random.default_rng``,
``time.time``), but source code reaches those objects through arbitrary
aliases: ``import numpy as np``, ``from time import time``, ``from
numpy.random import default_rng as rng``.  :class:`ImportMap` records a
module's import bindings so :meth:`ImportMap.resolve` can map an
expression such as ``np.random.default_rng`` back to its canonical
name, regardless of spelling at the call site.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Canonical-name resolution for one module's AST."""

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        # ``import a.b.c as x`` binds x -> a.b.c
                        self._aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds the root name ``a``
                        root = alias.name.split(".", 1)[0]
                        self._aliases.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                # Relative imports keep a leading dot so they can never
                # spuriously match an absolute canonical name.
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name for a Name/Attribute chain, or None.

        Unimported bare names resolve to themselves (so builtins like
        ``hash`` and ``set`` stay matchable); expressions that are not
        plain dotted chains (calls, subscripts, ...) resolve to None.
        """
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None
