"""Per-function summaries and the project call graph.

Each module-level function or method gets a :class:`FunctionSummary`:
its deadline parameters and whether the body consults them, every call
site (with resolved project callees, the lock regions syntactically
active at the call, and whether the call matched a *blocking* pattern),
every lock acquisition in syntactic order, every raised exception type,
and every span started outside a ``with``.  Nested functions fold into
their enclosing definition — a closure like ``_attempt`` inside
``ResilientBrowser.load`` blocks on behalf of ``load``.

Two facts are then propagated to a fixpoint along the call graph:

* *transitively blocking* — the function reaches a blocking pattern
  through some chain of project calls;
* *transitive locks* — the set of lock entities the function may
  acquire, directly or through callees (feeds the static lock graph).

Call edges are resolved three ways, in decreasing confidence: a dotted
name the :class:`~repro.lint.imports.ImportMap` maps to a known
function, a ``self.method`` lookup through the project class hierarchy,
and finally a name-based *fuzzy* match against every project method of
that name (sound-ish for propagation, never used to invent precision).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.lint.graph.symbols import (
    FunctionSymbol,
    ModuleSource,
    ModuleSymbols,
    SymbolTable,
)
from repro.lint.rules.concurrency import _self_attribute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.config import LintConfig

#: Method names too generic for fuzzy (name-only) call resolution:
#: these are mostly builtin-container verbs, so `self._counters.clear()`
#: must not edge into every project class that happens to define
#: `clear`.  Dotted/self resolution still sees them; only the
#: last-resort name match skips them.
_GENERIC_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "close",
        "copy",
        "discard",
        "extend",
        "flush",
        "get",
        "insert",
        "items",
        "join",
        "keys",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "put",
        "read",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "start",
        "update",
        "values",
        "write",
    }
)


@dataclass
class CallSite:
    """One call expression inside a summarised function."""

    line: int
    col: int
    callees: tuple[str, ...]
    fuzzy: bool
    blocking_token: str | None
    in_regions: tuple[int, ...]


@dataclass
class LockRegion:
    """One ``with <lock>:`` acquisition, in syntactic order."""

    owner: str
    reentrant: bool
    line: int
    col: int


@dataclass
class RaiseSite:
    """One ``raise`` with the canonical name of the raised class."""

    line: int
    col: int
    exc: str | None


@dataclass
class SpanStart:
    """A ``.span(...)`` call used outside a ``with`` item."""

    line: int
    col: int


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    symbol: FunctionSymbol
    path: str
    deadline_used: bool = False
    calls: list[CallSite] = field(default_factory=list)
    lock_regions: list[LockRegion] = field(default_factory=list)
    #: (held owner, acquired owner, line) for syntactically nested
    #: ``with`` lock regions inside this function.
    region_edges: list[tuple[str, str, int]] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    span_starts: list[SpanStart] = field(default_factory=list)
    exit_lines: tuple[int, ...] = ()
    blocking_token: str | None = None
    # Propagated along the call graph:
    transitively_blocking: bool = False
    blocking_via: str | None = None
    transitive_locks: frozenset[str] = frozenset()

    @property
    def qualname(self) -> str:
        """The function's canonical dotted name."""
        return self.symbol.qualname

    @property
    def line(self) -> int:
        """1-based line of the function definition."""
        return self.symbol.node.lineno

    @property
    def col(self) -> int:
        """1-based column of the function definition."""
        return self.symbol.node.col_offset + 1


@dataclass
class ProjectGraph:
    """The interprocedural view the PHL5xx rules consume."""

    table: SymbolTable
    summaries: dict[str, FunctionSummary]


# ----------------------------------------------------------------------
# Extraction


def _receiver_token(func: ast.expr) -> str | None:
    """``receiver.attr`` token for pattern matching, or None.

    The receiver is the last name segment before the attribute, so
    ``self._browser.load`` and ``browser.load`` both yield
    ``_browser.load``/``browser.load`` and match ``*browser.load``.
    """
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        base = value.id
    elif isinstance(value, ast.Attribute):
        base = value.attr
    else:
        return None
    return f"{base}.{func.attr}"


def _blocking_token(
    func: ast.expr, msyms: ModuleSymbols, patterns: Sequence[str]
) -> str | None:
    """The matched blocking pattern token for this call, if any."""
    candidates = []
    token = _receiver_token(func)
    if token is not None:
        candidates.append(token)
    resolved = msyms.imports.resolve(func)
    if resolved is not None and resolved not in candidates:
        candidates.append(resolved)
    for candidate in candidates:
        if any(fnmatch(candidate, pattern) for pattern in patterns):
            return candidate
    return None


def _narrow_fuzzy(
    candidates: tuple[str, ...], receiver: str | None
) -> tuple[str, ...]:
    """Prefer fuzzy candidates whose class name echoes the receiver.

    ``self.policy.call`` should edge into ``RetryPolicy.call``, not
    every project ``call`` — when the receiver's name appears in a
    candidate's class name (or vice versa), keep only those; with no
    affinity anywhere, keep all candidates (soundness over precision).
    Containment, not suffix matching: a ``metrics`` receiver must keep
    both ``NullMetrics`` and ``MetricsRegistry`` as candidates.
    """
    if receiver is None:
        return candidates
    token = receiver.strip("_").lower()
    if not token:
        return candidates
    narrowed = []
    for qualname in candidates:
        cls_name = qualname.rsplit(".", 2)[-2].strip("_").lower()
        if token in cls_name or cls_name in token:
            narrowed.append(qualname)
    return tuple(narrowed) or candidates


def _resolve_call(
    func: ast.expr,
    table: SymbolTable,
    msyms: ModuleSymbols,
    cls_qualname: str | None,
    caller: str,
) -> tuple[tuple[str, ...], bool]:
    """(project callees, fuzzy?) for one call's function expression."""
    resolved = msyms.imports.resolve(func)
    if resolved is not None:
        found = table.lookup_function(resolved, msyms)
        if found is not None:
            return (found.qualname,), False
    if isinstance(func, ast.Attribute):
        value = func.value
        if (
            isinstance(value, ast.Name)
            and value.id in ("self", "cls")
            and cls_qualname is not None
        ):
            method = table.resolve_method(cls_qualname, func.attr)
            if method is not None:
                return (method,), False
        if func.attr not in _GENERIC_METHOD_NAMES:
            if isinstance(value, ast.Name):
                receiver: str | None = value.id
            elif isinstance(value, ast.Attribute):
                receiver = value.attr
            else:
                receiver = None
            candidates = _narrow_fuzzy(
                table.methods_by_name.get(func.attr, ()), receiver
            )
            # A recursive call is written `self.method(...)` and
            # resolved above; a fuzzy hit on the caller itself is a
            # different object's method of the same name.
            candidates = tuple(q for q in candidates if q != caller)
            if candidates:
                return candidates, True
    return (), False


def _raised_name(
    exc: ast.expr | None, table: SymbolTable, msyms: ModuleSymbols
) -> str | None:
    """Canonical name of the raised class (None when dynamic/bare)."""
    if exc is None:
        return None
    target = exc.func if isinstance(exc, ast.Call) else exc
    resolved = msyms.imports.resolve(target)
    if resolved is None:
        return None
    return table.canonical(resolved, msyms)


class _FunctionExtractor:
    """Builds one :class:`FunctionSummary`, folding nested functions."""

    def __init__(
        self,
        table: SymbolTable,
        msyms: ModuleSymbols,
        symbol: FunctionSymbol,
        blocking_patterns: Sequence[str],
    ) -> None:
        self.table = table
        self.msyms = msyms
        self.symbol = symbol
        self.patterns = blocking_patterns
        self.summary = FunctionSummary(symbol=symbol, path=msyms.display)
        self._with_context_calls: set[ast.Call] = set()
        self._exit_lines: set[int] = set()
        for node in ast.walk(symbol.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        self._with_context_calls.add(item.context_expr)

    def run(self) -> FunctionSummary:
        for stmt in self.symbol.node.body:
            self._visit(stmt, regions=())
        self.summary.exit_lines = tuple(sorted(self._exit_lines))
        return self.summary

    # ------------------------------------------------------------------

    def _region_owner(self, expr: ast.expr) -> tuple[str, bool] | None:
        attr = _self_attribute(expr)
        if attr is not None and self.symbol.cls is not None:
            return self.table.class_lock_owner(self.symbol.cls, attr)
        if isinstance(expr, ast.Name) and expr.id in self.msyms.module_locks:
            entity = f"{self.msyms.name}.{expr.id}"
            return entity, self.msyms.module_locks[expr.id]
        return None

    def _visit(self, node: ast.AST, regions: tuple[int, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Folded nested function: its statements execute at some
            # unknown later point, so calls/raises are attributed to the
            # enclosing summary but the active lock regions are not.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for child in body:
                self._visit(child, regions=())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node, regions)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, regions)
        elif isinstance(node, ast.Raise):
            self._exit_lines.add(node.lineno)
            self.summary.raises.append(
                RaiseSite(
                    line=node.lineno,
                    col=node.col_offset + 1,
                    exc=_raised_name(node.exc, self.table, self.msyms),
                )
            )
        elif isinstance(node, ast.Return):
            self._exit_lines.add(node.lineno)
        elif isinstance(node, ast.Name):
            if node.id in self.symbol.deadline_params:
                self.summary.deadline_used = True
        for child in ast.iter_child_nodes(node):
            self._visit(child, regions)

    def _visit_with(
        self, node: ast.With | ast.AsyncWith, regions: tuple[int, ...]
    ) -> None:
        inner = regions
        for item in node.items:
            self._visit(item.context_expr, regions=inner)
            if item.optional_vars is not None:
                self._visit(item.optional_vars, regions=inner)
            owned = self._region_owner(item.context_expr)
            if owned is None:
                continue
            owner, reentrant = owned
            index = len(self.summary.lock_regions)
            self.summary.lock_regions.append(
                LockRegion(
                    owner=owner,
                    reentrant=reentrant,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )
            for held_index in inner:
                held = self.summary.lock_regions[held_index]
                if held.owner == owner and reentrant:
                    continue
                self.summary.region_edges.append(
                    (held.owner, owner, node.lineno)
                )
            inner = (*inner, index)
        for stmt in node.body:
            self._visit(stmt, regions=inner)

    def _visit_call(self, node: ast.Call, regions: tuple[int, ...]) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
            and node not in self._with_context_calls
        ):
            self.summary.span_starts.append(
                SpanStart(line=node.lineno, col=node.col_offset + 1)
            )
        callees, fuzzy = _resolve_call(
            node.func,
            self.table,
            self.msyms,
            self.symbol.cls,
            self.symbol.qualname,
        )
        token = _blocking_token(node.func, self.msyms, self.patterns)
        if token is not None and self.summary.blocking_token is None:
            self.summary.blocking_token = token
        if callees or token is not None:
            self.summary.calls.append(
                CallSite(
                    line=node.lineno,
                    col=node.col_offset + 1,
                    callees=callees,
                    fuzzy=fuzzy,
                    blocking_token=token,
                    in_regions=regions,
                )
            )


# ----------------------------------------------------------------------
# Propagation


def _propagate(summaries: dict[str, FunctionSummary]) -> None:
    """Fixpoint of transitive blocking and transitive lock sets."""
    callers: dict[str, list[str]] = {}
    for qualname in sorted(summaries):
        for call in summaries[qualname].calls:
            for callee in call.callees:
                if callee in summaries:
                    callers.setdefault(callee, []).append(qualname)

    # Blocking: seed with direct pattern hits, walk the reverse edges.
    worklist = [q for q in sorted(summaries) if summaries[q].blocking_token]
    for qualname in worklist:
        summary = summaries[qualname]
        summary.transitively_blocking = True
        if summary.blocking_via is None:
            summary.blocking_via = summary.blocking_token
    while worklist:
        current = worklist.pop(0)
        for caller in callers.get(current, ()):
            summary = summaries[caller]
            if summary.transitively_blocking:
                continue
            summary.transitively_blocking = True
            summary.blocking_via = current
            worklist.append(caller)

    # Lock sets: iterate to a fixpoint (monotone over a finite lattice).
    for summary in summaries.values():
        summary.transitive_locks = frozenset(
            region.owner for region in summary.lock_regions
        )
    changed = True
    while changed:
        changed = False
        for qualname in sorted(summaries):
            summary = summaries[qualname]
            merged = set(summary.transitive_locks)
            for call in summary.calls:
                for callee in call.callees:
                    target = summaries.get(callee)
                    if target is not None:
                        merged |= target.transitive_locks
            if merged != summary.transitive_locks:
                summary.transitive_locks = frozenset(merged)
                changed = True


# ----------------------------------------------------------------------
# Entry points


def build_graph(
    modules: Iterable[ModuleSource], config: "LintConfig"
) -> ProjectGraph:
    """Build the project graph from already-parsed modules."""
    table = SymbolTable()
    ordered = sorted(modules, key=lambda m: m.display)
    contexts: list[ModuleSymbols] = []
    for source in ordered:
        contexts.append(table.add_module(source))
    summaries: dict[str, FunctionSummary] = {}
    patterns = config.flow_blocking
    for msyms in contexts:
        for qualname in sorted(table.functions):
            symbol = table.functions[qualname]
            if symbol.module != msyms.name or qualname in summaries:
                continue
            extractor = _FunctionExtractor(table, msyms, symbol, patterns)
            summaries[qualname] = extractor.run()
    _propagate(summaries)
    return ProjectGraph(table=table, summaries=summaries)


def build_graph_from_paths(
    paths: Iterable[Path], config: "LintConfig"
) -> ProjectGraph:
    """Read, parse and graph the given files (syntax errors skipped)."""
    modules: list[ModuleSource] = []
    for path in sorted(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError):
            continue
        modules.append(
            ModuleSource(
                display=config.display_path(path), source=source, tree=tree
            )
        )
    return build_graph(modules, config)
