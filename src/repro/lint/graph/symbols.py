"""Symbol table over a set of parsed modules.

Maps display paths (``src/repro/serve/engine.py``) to dotted module
names (``repro.serve.engine``), records every module-level function and
class method with the facts the flow rules need (deadline-like
parameters, lock attributes and their kinds, base classes), and
resolves names across module boundaries: relative imports are
absolutised against the owning module, class bases are canonicalised so
subclass queries work project-wide.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.imports import ImportMap
from repro.lint.rules.concurrency import _is_lock_name, _self_attribute

#: Parameter names treated as deadline carriers even without annotation.
_DEADLINE_NAMES = frozenset({"deadline"})

#: Annotation substrings that mark a parameter as a deadline carrier.
_DEADLINE_ANNOTATION = "Deadline"


def module_name_for(display: str) -> str:
    """Dotted module name for a '/'-separated display path.

    ``src/repro/serve/engine.py`` -> ``repro.serve.engine``;
    ``src/repro/lint/__init__.py`` -> ``repro.lint``.  A leading
    ``src`` component is stripped so names line up with runtime
    ``__name__`` values; other prefixes (``tests/...``) are kept.
    """
    parts = [part for part in display.replace("\\", "/").split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if parts and parts[0] == "src":
        parts = parts[1:]
    return ".".join(parts)


@dataclass(frozen=True)
class ModuleSource:
    """One module handed to the graph builder: path, text, parsed AST."""

    display: str
    source: str
    tree: ast.Module


@dataclass
class FunctionSymbol:
    """One module-level function or class method."""

    qualname: str
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    deadline_params: frozenset[str]


@dataclass
class ClassSymbol:
    """One class: canonical bases plus its lock attributes and kinds."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    lock_attrs: frozenset[str]
    reentrant_locks: frozenset[str]


@dataclass
class ModuleSymbols:
    """Per-module naming context shared by the graph passes."""

    name: str
    display: str
    tree: ast.Module
    imports: ImportMap
    is_package: bool
    #: Module-level lock names mapped to reentrancy.
    module_locks: dict[str, bool] = field(default_factory=dict)


def _deadline_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """Parameters of ``node`` that carry a deadline."""
    params: set[str] = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in ("self", "cls"):
            continue
        if arg.arg in _DEADLINE_NAMES or arg.arg.endswith("_deadline"):
            params.add(arg.arg)
        elif arg.annotation is not None and _DEADLINE_ANNOTATION in ast.unparse(
            arg.annotation
        ):
            params.add(arg.arg)
    return frozenset(params)


def _lock_kinds(
    cls: ast.ClassDef, imports: ImportMap
) -> tuple[frozenset[str], frozenset[str]]:
    """(lock attribute names, the reentrant subset) for one class."""
    locks: set[str] = set()
    reentrant: set[str] = set()
    for node in ast.walk(cls):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        for target in targets:
            attr = _self_attribute(target)
            if attr is None or not _is_lock_name(attr):
                continue
            locks.add(attr)
            if (
                isinstance(value, ast.Call)
                and imports.resolve(value.func) == "threading.RLock"
            ):
                reentrant.add(attr)
    return frozenset(locks), frozenset(reentrant)


def _module_locks(tree: ast.Module, imports: ImportMap) -> dict[str, bool]:
    """Module-level lock assignments, name -> reentrant."""
    out: dict[str, bool] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and _is_lock_name(target.id)
                and isinstance(node.value, ast.Call)
            ):
                resolved = imports.resolve(node.value.func)
                if resolved in ("threading.Lock", "threading.RLock"):
                    out[target.id] = resolved == "threading.RLock"
    return out


class SymbolTable:
    """Project-wide function/class lookup with canonical naming."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self.functions: dict[str, FunctionSymbol] = {}
        self.classes: dict[str, ClassSymbol] = {}
        self.methods_by_name: dict[str, tuple[str, ...]] = {}
        self._subclass_memo: dict[tuple[str, frozenset[str]], bool] = {}

    # ------------------------------------------------------------------
    # Construction

    def add_module(self, source: ModuleSource) -> ModuleSymbols:
        """Index one module's functions, classes and locks."""
        name = module_name_for(source.display)
        imports = ImportMap(source.tree)
        is_package = source.display.replace("\\", "/").endswith("__init__.py")
        msyms = ModuleSymbols(
            name=name,
            display=source.display,
            tree=source.tree,
            imports=imports,
            is_package=is_package,
            module_locks=_module_locks(source.tree, imports),
        )
        self.modules[name] = msyms
        self._collect(source.tree.body, msyms, cls_qualname=None)
        return msyms

    def _collect(
        self,
        body: list[ast.stmt],
        msyms: ModuleSymbols,
        cls_qualname: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = cls_qualname or msyms.name
                qualname = f"{owner}.{node.name}"
                symbol = FunctionSymbol(
                    qualname=qualname,
                    module=msyms.name,
                    cls=cls_qualname,
                    name=node.name,
                    node=node,
                    deadline_params=_deadline_params(node),
                )
                # Later definitions win, mirroring runtime rebinding.
                self.functions[qualname] = symbol
                if cls_qualname is not None:
                    known = self.methods_by_name.get(node.name, ())
                    if qualname not in known:
                        self.methods_by_name[node.name] = tuple(
                            sorted((*known, qualname))
                        )
            elif isinstance(node, ast.ClassDef):
                parent = cls_qualname or msyms.name
                qualname = f"{parent}.{node.name}"
                locks, reentrant = _lock_kinds(node, msyms.imports)
                bases = tuple(
                    canonical
                    for base in node.bases
                    if (canonical := self._canonical_base(base, msyms))
                    is not None
                )
                self.classes[qualname] = ClassSymbol(
                    qualname=qualname,
                    module=msyms.name,
                    name=node.name,
                    node=node,
                    bases=bases,
                    lock_attrs=locks,
                    reentrant_locks=reentrant,
                )
                self._collect(node.body, msyms, cls_qualname=qualname)

    def _canonical_base(
        self, base: ast.expr, msyms: ModuleSymbols
    ) -> str | None:
        resolved = msyms.imports.resolve(base)
        if resolved is None:
            return None
        return self.canonical(resolved, msyms)

    # ------------------------------------------------------------------
    # Naming

    def canonical(self, name: str, msyms: ModuleSymbols) -> str:
        """Absolute dotted name for a (possibly relative) resolved name.

        Relative names (leading dots from :class:`ImportMap`) are
        absolutised against the owning module; bare names are returned
        unchanged (callers try a module-local qualification themselves).
        """
        if not name.startswith("."):
            return name
        level = len(name) - len(name.lstrip("."))
        remainder = name.lstrip(".")
        parts = msyms.name.split(".") if msyms.name else []
        if not msyms.is_package:
            parts = parts[:-1]
        parts = parts[: len(parts) - (level - 1)] if level > 1 else parts
        prefix = ".".join(parts)
        if not prefix:
            return remainder
        return f"{prefix}.{remainder}" if remainder else prefix

    # ------------------------------------------------------------------
    # Queries

    def lookup_function(
        self, name: str, msyms: ModuleSymbols
    ) -> FunctionSymbol | None:
        """Function for a canonical-or-bare name seen in ``msyms``."""
        canonical = self.canonical(name, msyms)
        found = self.functions.get(canonical)
        if found is not None:
            return found
        if "." not in name:
            return self.functions.get(f"{msyms.name}.{canonical}")
        return None

    def resolve_method(self, cls_qualname: str, method: str) -> str | None:
        """``cls.method`` resolved through the project base-class chain."""
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            candidate = f"{current}.{method}"
            if candidate in self.functions:
                return candidate
            cls = self.classes.get(current)
            if cls is not None:
                queue.extend(cls.bases)
        return None

    def is_subclass(self, cls_qualname: str, bases: frozenset[str]) -> bool:
        """True when the class (or a transitive base) is in ``bases``."""
        key = (cls_qualname, bases)
        memo = self._subclass_memo.get(key)
        if memo is not None:
            return memo
        # Seed False to terminate on (malformed) base cycles.
        self._subclass_memo[key] = False
        if cls_qualname in bases:
            result = True
        else:
            cls = self.classes.get(cls_qualname)
            result = cls is not None and any(
                self.is_subclass(base, bases) for base in cls.bases
            )
        self._subclass_memo[key] = result
        return result

    def class_lock_owner(
        self, cls_qualname: str, attr: str
    ) -> tuple[str, bool] | None:
        """(owner entity, reentrant) when ``cls.attr`` is a known lock."""
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if attr in cls.lock_attrs:
                return cls_qualname, attr in cls.reentrant_locks
            queue.extend(cls.bases)
        return None
