"""The static lock-acquisition graph and its cycle detection.

An edge ``A -> B`` means: somewhere in the project, code that holds
lock entity ``A`` (a ``module.Class`` owning ``self._lock``, or a
``module.NAME`` module-level lock) may acquire lock entity ``B`` before
releasing ``A`` — either through syntactically nested ``with`` blocks
or by calling, while ``A`` is held, a function whose transitive lock
set contains ``B``.  Any cycle in this graph is a potential deadlock
under the thread :class:`~repro.parallel.WorkerPool` backend (PHL502);
acyclicity means a global acquisition order exists.  The runtime
sanitizer (:mod:`repro.lint.sanitizer`) checks witnessed orders against
these same edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.graph.callgraph import ProjectGraph


@dataclass(frozen=True)
class LockEdge:
    """Witness site for one held->acquired edge of the static graph."""

    held: str
    acquired: str
    path: str
    line: int
    function: str


def build_lock_edges(graph: ProjectGraph) -> dict[tuple[str, str], LockEdge]:
    """Every held->acquired pair, each with one deterministic witness.

    Reentrant self-edges (``with self._lock:`` re-entered through an
    :class:`~threading.RLock`) are excluded both here and at extraction
    time — re-acquiring an RLock you already hold is legal.
    """
    edges: dict[tuple[str, str], LockEdge] = {}

    def record(held: str, acquired: str, path: str, line: int, func: str) -> None:
        key = (held, acquired)
        witness = LockEdge(
            held=held, acquired=acquired, path=path, line=line, function=func
        )
        existing = edges.get(key)
        if existing is None or (witness.path, witness.line) < (
            existing.path,
            existing.line,
        ):
            edges[key] = witness

    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        for held, acquired, line in summary.region_edges:
            record(held, acquired, summary.path, line, qualname)
        for call in summary.calls:
            if not call.in_regions:
                continue
            acquired_set: set[str] = set()
            for callee in call.callees:
                target = graph.summaries.get(callee)
                if target is not None:
                    acquired_set |= target.transitive_locks
            if not acquired_set:
                continue
            for region_index in call.in_regions:
                region = summary.lock_regions[region_index]
                for owner in sorted(acquired_set):
                    if owner == region.owner and region.reentrant:
                        continue
                    record(region.owner, owner, summary.path, call.line, qualname)
    return edges


def find_lock_cycles(
    edges: dict[tuple[str, str], LockEdge]
) -> list[tuple[str, ...]]:
    """Cycles of the lock graph, as sorted node tuples.

    Returns one entry per strongly connected component that contains a
    cycle (more than one node, or a self-edge), ordered by first node.
    Tarjan's algorithm, iterative so deep chains cannot overflow the
    interpreter stack.
    """
    adjacency: dict[str, list[str]] = {}
    nodes: set[str] = set()
    for held, acquired in edges:
        nodes.add(held)
        nodes.add(acquired)
        adjacency.setdefault(held, []).append(acquired)
    for out in adjacency.values():
        out.sort()

    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    components: list[list[str]] = []

    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = adjacency.get(node, [])
            for position in range(child_index, len(successors)):
                successor = successors[position]
                if successor not in index:
                    work[-1] = (node, position + 1)
                    work.append((successor, 0))
                    recurse = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if recurse:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

    cycles: list[tuple[str, ...]] = []
    for component in components:
        if len(component) > 1 or (
            (component[0], component[0]) in edges
        ):
            cycles.append(tuple(sorted(component)))
    return sorted(cycles)
