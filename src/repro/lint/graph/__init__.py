"""``repro.lint.graph`` — project-wide interprocedural analysis.

The module-scope rules (PHL1xx–PHL4xx) see one file at a time; the bug
classes that actually bite a concurrent serving stack — deadline drops,
lock-order inversions, error-taxonomy leaks — span files.  This
subpackage builds the whole-program view those checks need:

* :mod:`repro.lint.graph.symbols` — a symbol table over every linted
  module: functions, classes (with their lock attributes and lock
  kinds), import-aware canonical naming;
* :mod:`repro.lint.graph.callgraph` — per-function summaries (deadline
  parameters, blocking callees, lock acquisitions in syntactic order,
  raised exception types, span starts) and the call graph that
  propagates the transitive facts along its edges;
* :mod:`repro.lint.graph.locks` — the static lock-acquisition graph
  derived from the summaries, plus cycle detection.

The PHL5xx "flow" rules (:mod:`repro.lint.rules.flow`) consume a
:class:`ProjectGraph`; the runtime lock-order sanitizer
(:mod:`repro.lint.sanitizer`) checks witnessed acquisition orders
against the same static lock graph.
"""

from repro.lint.graph.callgraph import (
    CallSite,
    FunctionSummary,
    LockRegion,
    ProjectGraph,
    RaiseSite,
    build_graph,
    build_graph_from_paths,
)
from repro.lint.graph.locks import LockEdge, build_lock_edges, find_lock_cycles
from repro.lint.graph.symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSource,
    ModuleSymbols,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "CallSite",
    "ClassSymbol",
    "FunctionSummary",
    "FunctionSymbol",
    "LockEdge",
    "LockRegion",
    "ModuleSource",
    "ModuleSymbols",
    "ProjectGraph",
    "RaiseSite",
    "SymbolTable",
    "build_graph",
    "build_graph_from_paths",
    "build_lock_edges",
    "find_lock_cycles",
    "module_name_for",
]
