"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-experiments``
    Show every reproducible paper artefact and its id.
``experiment <id>``
    Build the synthetic world, run one experiment, print the rendered
    table/series (ids match DESIGN.md: table5..table10, fig3..fig6,
    sec6d, sec7-ip, sec7-evasion).
``analyze``
    Train the detector and print the §VII-A/B analysis: feature-group
    importances and the false-positive attribution.  With
    ``--trace-out``/``--metrics-out`` it also runs an observed batch
    and dumps span/metric artifacts.
``obs report``
    Render a run report (stage timing, verdicts, cache hit rates,
    serving tiers, resilience counters, quality block) from dumped
    artifacts alone.
``obs quality``
    Quality observability: render a quality artifact, or ``--run``
    the deterministic drift scenario (healthy stream, then a drifted
    campaign wave) and write ``quality.json`` + ``flight.jsonl``;
    ``--expect-drift`` makes a missing drift alert a failure (the CI
    smoke contract).
``serve-bench``
    Run the overload + chaos serving scenario (admission control,
    backpressure, coalescing, deadlines, breaker, drain) in simulated
    time and print its report; ``--json`` dumps the full result.
    ``--triage`` runs the tiered scenario instead: the URL-only tier-0
    triage ladder vs the untriaged engine on one Zipf workload.
``demo``
    A one-minute end-to-end demonstration.
"""

from __future__ import annotations

import argparse
import sys

from repro.corpus.datasets import CorpusConfig
from repro.evaluation.reporting import format_curve, format_table
from repro.evaluation.runner import Lab
from repro.resilience import DeadlineExceeded, FetchError
from repro.web import PageNotFound, RedirectLoopError

_EXPERIMENTS = {
    "table5": "Table V    - dataset description",
    "table6": "Table VI   - accuracy across six languages",
    "table7": "Table VII  - accuracy per feature set (slow: CV x 8 sets)",
    "fig3": "Fig. 3     - precision vs recall per language",
    "fig4": "Fig. 4     - ROC per language",
    "fig5": "Fig. 5     - ROC per feature set (slow)",
    "fig6": "Fig. 6     - performance vs test-set scale",
    "table8": "Table VIII - processing time per stage",
    "table9": "Table IX   - target identification success",
    "table10": "Table X    - comparison with baselines",
    "sec6d": "Sec. VI-D  - false-positive filtering",
    "sec7-ip": "Sec. VII-B - IP-URL limitation",
    "sec7-evasion": "Sec. VII-C - evasion techniques",
    "ext-blacklist": "Extension  - blacklist-delay victim exposure (Sec. VIII)",
    "ext-model": "Extension  - gradient boosting vs linear model (Sec. IV-C)",
    "ext-drift": "Extension  - recall under temporal campaign drift",
    "ext-robustness": "Extension  - resilience under injected faults",
    "ext-throughput": "Extension  - batch throughput (serial vs parallel, cold vs warm cache)",
    "ext-training": "Extension  - training speed (tree methods + fold-parallel CV)",
}


def _build_lab(args) -> Lab:
    config = CorpusConfig.paper_scale(args.scale, seed=args.seed)
    workers = getattr(args, "workers", 0)
    print(
        f"building world (scale={args.scale}, seed={args.seed}, "
        f"workers={workers or 1}, cache={'on' if args.cache else 'off'})...",
        file=sys.stderr,
    )
    return Lab(
        config,
        n_estimators=args.estimators,
        workers=workers or None,
        cache=args.cache,
        tree_method=getattr(args, "tree_method", "presort"),
    )


def _run_experiment(lab: Lab, experiment: str) -> str:
    if experiment == "table5":
        rows = lab.table5_rows()
        return format_table(
            ["set", "name", "initial", "clean"],
            [[r["set"], r["name"], r["initial"], r["clean"]] for r in rows],
        )
    if experiment == "table6":
        rows = lab.table6_rows()
        return format_table(
            ["language", "precision", "recall", "f1", "fp_rate", "auc"],
            [[r["language"], r["precision"], r["recall"], r["f1"], r["fpr"],
              r["auc"]] for r in rows],
        )
    if experiment == "table7":
        rows = lab.table7_rows()
        return format_table(
            ["scenario", "set", "precision", "recall", "f1", "fp_rate", "auc"],
            [[r["scenario"], r["feature_set"], r["precision"], r["recall"],
              r["f1"], r["fpr"], r["auc"]] for r in rows],
        )
    if experiment == "fig3":
        return "\n".join(
            format_curve(language, precision, recall)
            for language, (precision, recall) in lab.fig3_curves().items()
        )
    if experiment == "fig4":
        return "\n".join(
            format_curve(language, fpr, tpr)
            for language, (fpr, tpr) in lab.fig4_curves().items()
        )
    if experiment == "fig5":
        return "\n".join(
            format_curve(f"{fs}/{scenario}", fpr, tpr)
            for (fs, scenario), (fpr, tpr) in lab.fig5_curves().items()
        )
    if experiment == "fig6":
        rows = lab.fig6_curve()
        return format_table(
            ["sample_size", "precision", "recall", "fp_rate"],
            [[r["sample_size"], r["precision"], r["recall"], r["fpr"]]
             for r in rows],
        )
    if experiment == "table8":
        timing = lab.table8_timing()
        return format_table(
            ["stage", "median_ms", "average_ms", "std_ms"],
            [[stage, s["median"], s["average"], s["std"]]
             for stage, s in timing.items()],
        )
    if experiment == "table9":
        rows = lab.table9_target_id()
        return format_table(
            ["targets", "identified", "unknown", "missed", "success_rate"],
            [[name, r["identified"], r["unknown"], r["missed"],
              r["success_rate"]] for name, r in rows.items()],
        )
    if experiment == "table10":
        rows = lab.table10_rows()
        return format_table(
            ["technique", "fpr", "precision", "recall", "accuracy"],
            [[r["technique"], r["fpr"], r["precision"], r["recall"],
              r["accuracy"]] for r in rows],
        )
    if experiment == "sec6d":
        result = lab.sec6d_fp_filtering()
        return format_table(
            ["metric", "value"],
            [["false positives", result["false_positives"]],
             ["confirmed legitimate", result["breakdown"]["legitimate"]],
             ["suspicious", result["breakdown"]["suspicious"]],
             ["identified as phish", result["breakdown"]["phish"]],
             ["fpr before", result["fpr_before"]],
             ["fpr after", result["fpr_after"]]],
        )
    if experiment == "sec7-ip":
        result = lab.sec7_ip_recall()
        return format_table(
            ["metric", "recall"],
            [["ip-based phish", result["ip_recall"]],
             ["global", result["global_recall"]]],
        )
    if experiment == "sec7-evasion":
        results = lab.sec7_evasion()
        return format_table(
            ["technique", "detection recall"],
            [[technique, recall] for technique, recall in results.items()],
        )
    if experiment == "ext-blacklist":
        result = lab.sec8_blacklist_exposure()
        return format_table(
            ["metric", "value"], [[k, v] for k, v in result.items()]
        )
    if experiment == "ext-model":
        result = lab.model_choice_ablation()
        return format_table(
            ["model", "auc"], [[k, v] for k, v in result.items()]
        )
    if experiment == "ext-drift":
        result = lab.temporal_drift()
        return format_table(
            ["metric", "value"],
            [["training-era recall", result["baseline_recall"]],
             ["drifted recall", result["drifted_recall"]],
             ["skipped urls (unparsable)", result["skipped_urls"]]],
        )
    if experiment == "ext-robustness":
        curve = format_table(
            ["fault_rate", "pages", "completed", "quarantined",
             "retried", "faults", "accuracy"],
            [[r["fault_rate"], r["pages"], r["completed"], r["quarantined"],
              r["retried_pages"], r["faults_injected"], r["accuracy"]]
             for r in lab.robustness_curve()],
        )
        outage = lab.robustness_search_outage()
        outage_table = format_table(
            ["metric", "value"], [[k, v] for k, v in outage.items()]
        )
        partial = lab.robustness_degraded_content()
        partial_table = format_table(
            ["metric", "value"], [[k, v] for k, v in partial.items()]
        )
        return (
            "transient faults + retries:\n" + curve
            + "\n\nsearch engine forced down (circuit breaker):\n"
            + outage_table
            + "\n\npartial content (truncation, lost screenshots):\n"
            + partial_table
        )
    if experiment == "ext-throughput":
        rows = lab.throughput_benchmark()
        return format_table(
            ["mode", "workers", "warm_cache", "pages", "pages_per_sec",
             "speedup", "verdicts_match"],
            [[r["mode"], r["workers"], r["warm_cache"], r["pages"],
              r["pages_per_sec"], r["speedup"], r["verdicts_match"]]
             for r in rows],
        )
    if experiment == "ext-training":
        result = lab.training_benchmark()
        methods = format_table(
            ["tree_method", "fit_seconds", "stages_per_sec",
             "speedup_vs_exact", "proba_identical"],
            [[name, m["fit_seconds"], m["stages_per_sec"],
              m["speedup_vs_exact"], m["proba_identical_to_exact"]]
             for name, m in result["methods"].items()],
        )
        cv = result["cross_validation"]
        cv_table = format_table(
            ["metric", "value"],
            [["folds", cv["n_splits"]],
             ["workers", cv["workers"]],
             ["serial_seconds", cv["serial_seconds"]],
             ["parallel_seconds", cv["parallel_seconds"]],
             ["speedup", cv["speedup"]],
             ["scores_identical", cv["scores_identical"]]],
        )
        return (
            "tree methods (fit on the training matrix):\n" + methods
            + "\n\nfold-parallel cross-validation:\n" + cv_table
        )
    raise ValueError(f"unknown experiment {experiment!r}")


def _cmd_list(_args) -> int:
    for experiment_id, description in _EXPERIMENTS.items():
        print(f"{experiment_id:14s} {description}")
    return 0


def _cmd_experiment(args) -> int:
    if args.id not in _EXPERIMENTS:
        print(
            f"unknown experiment {args.id!r}; try 'list-experiments'",
            file=sys.stderr,
        )
        return 2
    lab = _build_lab(args)
    print(_run_experiment(lab, args.id))
    return 0


def _cmd_analyze(args) -> int:
    from repro.evaluation.analysis import (
        feature_group_importances,
        misclassified_legitimate,
        top_features,
    )

    lab = _build_lab(args)
    detector = lab.detector("fall")

    print("feature-group importances:")
    groups = feature_group_importances(detector)
    print(format_table(
        ["group", "importance"], [[g, v] for g, v in groups.items()]
    ))

    print("\ntop individual features:")
    print(format_table(
        ["feature", "importance"], list(top_features(detector, 10))
    ))

    report = misclassified_legitimate(
        detector, lab.dataset("english"), features=lab.features("english")
    )
    print(f"\nfalse positives on the English test set: {report.fp_count} "
          f"(fpr {report.fpr:.4f})")
    print(format_table(
        ["page kind", "count"],
        [[kind, count] for kind, count in report.kind_counts.most_common()],
    ))
    print(f"share with term-extraction pathologies: "
          f"{report.term_issue_share:.0%}")
    print(f"share parked/near-empty: {report.degenerate_share:.0%}")

    if args.trace_out or args.metrics_out:
        print(
            "\nrunning observed batch (tracing + metrics)...",
            file=sys.stderr,
        )
        run = lab.observed_run(
            workers=getattr(args, "workers", 0) or None,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
        )
        print(
            f"\nobserved run: {int(run['analyzed'])} pages analyzed, "
            f"{run['span_count']} spans recorded"
        )
        for key in ("trace_out", "metrics_out"):
            if key in run:
                print(f"wrote {run[key]}", file=sys.stderr)
    return 0


def _cmd_obs_report(args) -> int:
    from repro.obs import RunReport

    spans = args.spans if args.spans else None
    metrics = args.metrics if args.metrics else None
    quality = getattr(args, "quality", None) or None
    if spans is None and metrics is None and quality is None:
        print(
            "error: pass --spans, --metrics and/or --quality artifact "
            "paths",
            file=sys.stderr,
        )
        return 2
    try:
        report = RunReport.from_artifacts(
            spans_path=spans, metrics_path=metrics, quality_path=quality
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _cmd_obs_quality(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import render_quality

    if args.run:
        lab = _build_lab(args)
        print(
            "running quality drift scenario (healthy stream, then a "
            "drifted campaign wave)...",
            file=sys.stderr,
        )
        result = lab.quality_drift_scenario()
        artifact = result["artifact"]
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            monitor = result["monitor"]
            print(
                f"wrote {monitor.write_artifact(out / 'quality.json')}",
                file=sys.stderr,
            )
            print(
                f"wrote {monitor.write_flight(out / 'flight.jsonl')}",
                file=sys.stderr,
            )
        print(render_quality(artifact))
        if result["healthy_alerts"]:
            print(
                "error: the healthy phase raised alerts "
                f"({len(result['healthy_alerts'])})",
                file=sys.stderr,
            )
            return 1
    elif args.artifact:
        try:
            artifact = json.loads(
                Path(args.artifact).read_text(encoding="utf-8")
            )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(render_quality(artifact))
    else:
        print(
            "error: pass --run or --artifact PATH", file=sys.stderr
        )
        return 2
    if args.expect_drift:
        firing = [
            alert
            for alert in artifact.get("alerts", [])
            if alert.get("kind") == "drift"
            and alert.get("state") == "firing"
        ]
        if not firing:
            print(
                "error: expected at least one firing drift alert",
                file=sys.stderr,
            )
            return 1
        print(
            f"{len(firing)} firing drift alert(s), as expected",
            file=sys.stderr,
        )
    return 0


def _cmd_demo(args) -> int:
    from repro.core.pipeline import KnowYourPhish
    from repro.core.target import TargetIdentifier

    lab = _build_lab(args)
    detector = lab.detector("fall")
    identifier = TargetIdentifier(lab.world.search, ocr=lab.ocr)
    pipeline = KnowYourPhish(detector, identifier)

    print("analyzing five phishing and two legitimate pages:\n")
    for page in list(lab.dataset("phishTest"))[:5]:
        verdict = pipeline.analyze(page.snapshot)
        print(f"  {page.url[:60]:60s} -> {verdict.verdict:10s}"
              f" target={verdict.top_target or '-'}")
    for page in list(lab.dataset("english"))[:2]:
        verdict = pipeline.analyze(page.snapshot)
        print(f"  {page.url[:60]:60s} -> {verdict.verdict}")
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    lab = _build_lab(args)
    if args.triage:
        print(
            f"running tiered serving scenario ({args.overload}x overload, "
            f"{args.serve_workers} workers, {args.duration}s simulated)...",
            file=sys.stderr,
        )
        result = lab.serving_tiered_benchmark(
            workers=args.serve_workers,
            overload=args.overload,
            duration=args.duration,
            queue_limit=args.queue_limit,
        )
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        print(
            f"offered {result['requests']} requests "
            f"({result['offered_rps']:.0f} rps vs "
            f"{result['capacity_rps']:.0f} rps capacity)"
        )
        quality = result["quality"]
        rows = [
            ["tier0_share", f"{result['triage']['tier0_share']:.3f}"],
            ["escalation_rate",
             f"{result['triage']['corpus_escalation_rate']:.3f}"],
            ["untriaged_p50", f"{result['untriaged']['latency_p50']:.4f}s"],
            ["tiered_p50", f"{result['tiered']['latency_p50']:.4f}s"],
            ["p50_speedup", f"{result['p50_speedup']:.1f}x"],
            ["untriaged_rps",
             f"{result['untriaged']['throughput_rps']:.1f}"],
            ["tiered_rps", f"{result['tiered']['throughput_rps']:.1f}"],
            ["escalated_mismatches",
             result["escalated_verdict_mismatches"]],
            ["tiered_precision", f"{quality['tiered']['precision']:.3f}"],
            ["tiered_recall", f"{quality['tiered']['recall']:.3f}"],
        ]
        print(format_table(["metric", "value"], rows))
        ok = (
            result["escalated_verdict_mismatches"] == 0
            and result["tiered"]["throughput_rps"]
            > result["untriaged"]["throughput_rps"]
        )
        if not ok:
            print("error: triage ladder contract violated", file=sys.stderr)
            return 1
        return 0
    print(
        f"running serving scenario ({args.overload}x overload, "
        f"{args.serve_workers} workers, {args.duration}s simulated)...",
        file=sys.stderr,
    )
    result = lab.serving_benchmark(
        workers=args.serve_workers,
        overload=args.overload,
        duration=args.duration,
        budget=args.budget,
        queue_limit=args.queue_limit,
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    report = result["report"]
    print(
        f"offered {result['requests']} requests "
        f"({result['offered_rps']:.0f} rps vs "
        f"{result['capacity_rps']:.0f} rps capacity)"
    )
    rows = [
        ["served", report["served"]],
        ["degraded", report["degraded"]],
        ["shed", report["shed"]],
        ["shed_rate", f"{report['shed_rate']:.3f}"],
        ["coalesced", report["coalesced"]],
        ["memo_hits", report["memo_hits"]],
        ["max_queue_depth",
         f"{report['max_queue_depth']}/{report['queue_limit']}"],
        ["latency_p50", f"{report['latency_p50']:.3f}s"],
        ["latency_p99", f"{report['latency_p99']:.3f}s"],
        ["breaker_opened", result["breaker"]["opened"]],
        ["verdict_mismatches", result["verdict_mismatches"]],
        ["budget_violations", result["budget_violations"]],
    ]
    for reason, count in report["shed_reasons"].items():
        rows.append([f"shed[{reason}]", count])
    print(format_table(["metric", "value"], rows))
    ok = (
        result["terminated"] == result["requests"]
        and result["verdict_mismatches"] == 0
        and result["budget_violations"] == 0
    )
    if not ok:
        print("error: serving contract violated", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    from repro.evaluation.report import compile_report

    try:
        text = compile_report(args.results_dir)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.out == "-":
        print(text)
    else:
        from pathlib import Path
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Know Your Phish reproduction — experiment runner",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="corpus scale relative to the paper's Table V (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--estimators", type=int, default=100,
        help="boosting stages per trained model",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker threads for batch extraction/analysis "
             "(0 or 1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="memoize per-snapshot feature work by content hash "
             "(--no-cache disables)",
    )
    parser.add_argument(
        "--tree-method", choices=("exact", "presort", "histogram"),
        default="presort", dest="tree_method",
        help="split-finding strategy for training: presort is "
             "bit-identical to exact but much faster; histogram is "
             "approximate (default presort)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "list-experiments", help="list reproducible artefacts"
    ).set_defaults(func=_cmd_list)

    experiment = commands.add_parser(
        "experiment", help="run one paper experiment"
    )
    experiment.add_argument("id", help="experiment id (see list-experiments)")
    experiment.set_defaults(func=_cmd_experiment)

    analyze = commands.add_parser(
        "analyze", help="feature importances + FP attribution"
    )
    analyze.add_argument(
        "--trace-out", default=None, dest="trace_out", metavar="PATH",
        help="also run an observed batch and dump its span tree "
             "as JSON lines to PATH",
    )
    analyze.add_argument(
        "--metrics-out", default=None, dest="metrics_out", metavar="PATH",
        help="also run an observed batch and dump its metrics in "
             "Prometheus text format to PATH",
    )
    analyze.set_defaults(func=_cmd_analyze)

    commands.add_parser(
        "demo", help="end-to-end demonstration"
    ).set_defaults(func=_cmd_demo)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="overload + chaos serving scenario in simulated time",
    )
    serve_bench.add_argument(
        "--serve-workers", type=int, default=4, dest="serve_workers",
        help="concurrent analysis workers in the serving engine",
    )
    serve_bench.add_argument(
        "--overload", type=float, default=3.0,
        help="offered load as a multiple of sustainable capacity",
    )
    serve_bench.add_argument(
        "--duration", type=float, default=2.0,
        help="simulated seconds of offered traffic",
    )
    serve_bench.add_argument(
        "--budget", type=float, default=1.2,
        help="per-request deadline budget in simulated seconds",
    )
    serve_bench.add_argument(
        "--queue-limit", type=int, default=32, dest="queue_limit",
        help="bounded admission queue size",
    )
    serve_bench.add_argument(
        "--triage", action="store_true",
        help="run the tiered scenario: URL-only tier-0 triage ladder "
             "vs the untriaged engine on the same workload",
    )
    serve_bench.add_argument(
        "--json", action="store_true",
        help="print the full result as JSON instead of a table",
    )
    serve_bench.set_defaults(func=_cmd_serve_bench)

    report = commands.add_parser(
        "report", help="compile benchmark artefacts into one Markdown report"
    )
    report.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory holding the benchmark artefacts",
    )
    report.add_argument(
        "--out", default="-", help="output file ('-' for stdout)",
    )
    report.set_defaults(func=_cmd_report)

    obs = commands.add_parser(
        "obs", help="observability artifact tools"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_commands.add_parser(
        "report",
        help="render a run report from dumped span/metric artifacts",
    )
    obs_report.add_argument(
        "--spans", default=None, metavar="PATH",
        help="spans JSONL dump (from --trace-out)",
    )
    obs_report.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="Prometheus metrics dump (from --metrics-out)",
    )
    obs_report.add_argument(
        "--quality", default=None, metavar="PATH",
        help="quality-monitor artifact (quality.json)",
    )
    obs_report.set_defaults(func=_cmd_obs_report)
    obs_quality = obs_commands.add_parser(
        "quality",
        help="render a quality artifact, or run the drift scenario",
    )
    obs_quality.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="render an existing quality.json artifact",
    )
    obs_quality.add_argument(
        "--run", action="store_true",
        help="run the deterministic drift scenario (healthy stream, "
             "then a drifted campaign wave) with monitors armed",
    )
    obs_quality.add_argument(
        "--out", default=None, metavar="DIR",
        help="with --run: directory receiving quality.json and "
             "flight.jsonl",
    )
    obs_quality.add_argument(
        "--expect-drift", action="store_true", dest="expect_drift",
        help="exit nonzero unless at least one drift alert fired",
    )
    obs_quality.set_defaults(func=_cmd_obs_quality)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Navigation and resilience failures surface as a one-line error on
    stderr and a nonzero exit code — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (PageNotFound, RedirectLoopError) as exc:
        print(f"error: navigation failed: {exc}", file=sys.stderr)
        return 1
    except (FetchError, DeadlineExceeded) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
