"""Compiled ensemble inference: level-wise batch traversal over arrays.

A fitted :class:`~repro.ml.boosting.GradientBoostingClassifier` scores a
batch by looping Python-side over ``n_estimators``
:class:`~repro.ml.tree.RegressionTree` objects, each of which runs its
own active-set descent.  For wide batches that per-tree dispatch is the
dominant cost: 100 trees times several numpy calls per level, per tree.

:class:`CompiledEnsemble` flattens the whole ensemble once into five
parallel ``(n_trees, max_nodes)`` arrays — feature index, threshold,
left child, right child, leaf value — padded with leaf sentinels past
each tree's node count.  Prediction then advances **all rows through all
trees simultaneously**: one ``(n_rows, n_trees)`` node-index matrix,
stepped level by level with numpy masks until every lane sits on a leaf.
The number of numpy passes is the maximum tree depth (typically 3-4),
not ``n_estimators``.

Bit-identity contract (enforced by ``tests/core/test_batch_differential``):

* routing compares the same float64 values with the same ``<=`` as
  :meth:`RegressionTree.apply`, so every row lands on the same leaf;
* the raw score accumulates **tree by tree in ensemble order** —
  ``raw += learning_rate * leaf_value[:, tree]`` — reproducing the
  reference loop's float rounding exactly (element-wise operations do
  not depend on memory layout; only re-ordered *reductions* would);
* the logistic link is the same :func:`sigmoid` the boosting path uses.

The compiled form is a pure function of the fitted trees: plain arrays,
picklable, no RNG, no clocks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.tree import RegressionTree

#: Sentinel feature index marking a leaf (mirrors ``repro.ml.tree``).
LEAF = -1


def sigmoid(raw: np.ndarray) -> np.ndarray:
    """The logistic link shared by the per-tree and compiled paths."""
    return 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))


class CompiledEnsemble:
    """A fitted boosting ensemble flattened for level-wise batch scoring.

    Build with :meth:`from_trees` (or let
    :meth:`GradientBoostingClassifier.decision_function
    <repro.ml.boosting.GradientBoostingClassifier.decision_function>`
    compile lazily).  Instances are immutable value objects: compiling
    never mutates the source trees, and predictions are bit-identical
    to the per-tree reference loop.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        initial_raw: float,
        learning_rate: float,
        n_features: int,
    ) -> None:
        if feature.ndim != 2:
            raise ValueError(f"feature must be 2-D, got shape {feature.shape}")
        for name, array in (
            ("threshold", threshold), ("left", left),
            ("right", right), ("value", value),
        ):
            if array.shape != feature.shape:
                raise ValueError(
                    f"{name} shape {array.shape} != feature shape "
                    f"{feature.shape}"
                )
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.initial_raw = float(initial_raw)
        self.learning_rate = float(learning_rate)
        self.n_features = int(n_features)

    # ------------------------------------------------------------------
    @classmethod
    def from_trees(
        cls,
        trees: Sequence[RegressionTree],
        initial_raw: float,
        learning_rate: float,
        n_features: int,
    ) -> "CompiledEnsemble":
        """Flatten fitted trees into padded parallel arrays.

        Trees are ragged (node counts differ); each is padded to the
        widest tree with self-referencing leaf sentinels, which the
        traversal can never reach — padding exists purely so the five
        arrays stack rectangularly.
        """
        if not trees:
            raise ValueError("cannot compile an empty ensemble")
        for tree in trees:
            if tree.feature is None:
                raise ValueError("cannot compile an unfitted tree")
        width = max(tree.n_nodes for tree in trees)
        n_trees = len(trees)
        feature = np.full((n_trees, width), LEAF, dtype=np.int64)
        threshold = np.zeros((n_trees, width), dtype=np.float64)
        left = np.zeros((n_trees, width), dtype=np.int64)
        right = np.zeros((n_trees, width), dtype=np.int64)
        value = np.zeros((n_trees, width), dtype=np.float64)
        for row, tree in enumerate(trees):
            n = tree.n_nodes
            feature[row, :n] = tree.feature
            threshold[row, :n] = tree.threshold
            left[row, :n] = tree.left
            right[row, :n] = tree.right
            value[row, :n] = tree.value
        return cls(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            initial_raw=initial_raw,
            learning_rate=learning_rate,
            n_features=n_features,
        )

    # ------------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        """Number of boosting stages in the compiled ensemble."""
        return int(self.feature.shape[0])

    @property
    def max_nodes(self) -> int:
        """Padded node-array width (the widest tree's node count)."""
        return int(self.feature.shape[1])

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"X must have shape (*, {self.n_features}), got {X.shape}"
            )
        return X

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf value reached in every tree: shape ``(n_rows, n_trees)``.

        The level-wise core: a node-index matrix starts at every root
        and, per level, rows sitting on internal nodes gather their
        split feature's value and step to the left or right child.
        Lanes already on leaves keep their node id, so ragged tree
        depths need nothing beyond the ``internal`` mask.
        """
        X = self._check(X)
        n_rows = X.shape[0]
        tree_ix = np.arange(self.n_trees)
        node = np.zeros((n_rows, self.n_trees), dtype=np.int64)
        # A tree's depth is strictly below its node count; the range is
        # a safety bound, the loop exits as soon as every lane is a leaf.
        for _level in range(self.max_nodes + 1):
            feat = self.feature[tree_ix, node]
            internal = feat >= 0
            if not internal.any():
                break
            gather = np.where(internal, feat, 0)
            split_value = np.take_along_axis(X, gather, axis=1)
            go_left = split_value <= self.threshold[tree_ix, node]
            child = np.where(
                go_left, self.left[tree_ix, node], self.right[tree_ix, node]
            )
            node = np.where(internal, child, node)
        return self.value[tree_ix, node]

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive score before the logistic link.

        Accumulated tree by tree in ensemble order — NOT as one fused
        reduction — so every intermediate rounding matches the
        reference per-tree loop bit for bit.
        """
        leaves = self.leaf_values(X)
        raw = np.full(len(leaves), self.initial_raw)
        for tree in range(self.n_trees):
            raw += self.learning_rate * leaves[:, tree]
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Positive-class confidence in ``[0, 1]`` for every row."""
        return sigmoid(self.decision_function(X))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledEnsemble(n_trees={self.n_trees}, "
            f"max_nodes={self.max_nodes}, n_features={self.n_features})"
        )
