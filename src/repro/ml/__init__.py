"""Machine-learning substrate (replaces scikit-learn for this reproduction).

The paper trains a Gradient Boosting classifier [Friedman 2002] over its
212 features.  This subpackage provides a from-scratch implementation on
numpy: regression trees as base learners, stochastic gradient boosting
with binomial deviance loss, plus the evaluation metrics (precision,
recall, F1, FPR, ROC/AUC, precision-recall curves) and stratified
cross-validation used throughout Section VI.

Training is served by three split-finding strategies (see
:mod:`repro.ml.tree`): the seed ``exact`` greedy path, the bit-identical
shared-``presort`` path (the default), and the opt-in approximate
``histogram`` path built on :mod:`repro.ml.histogram`.  Fits expose
:class:`~repro.ml.instrumentation.TrainingStats`, and cross-validation
can fan folds out over a :class:`repro.parallel.executor.WorkerPool`
with results identical to the serial run.
"""

from repro.ml.boosting import PAPER_THRESHOLD, GradientBoostingClassifier
from repro.ml.compiled import CompiledEnsemble
from repro.ml.histogram import BinnedMatrix, bin_matrix
from repro.ml.instrumentation import TrainingStats
from repro.ml.metrics import (
    BinaryMetrics,
    auc,
    binary_metrics,
    confusion_counts,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)
from repro.ml.tree import RegressionTree, presort_matrix, restrict_presort
from repro.ml.validation import (
    cross_validate,
    cross_validate_scores,
    stratified_kfold,
    train_test_split,
)

__all__ = [
    "BinaryMetrics",
    "BinnedMatrix",
    "CompiledEnsemble",
    "GradientBoostingClassifier",
    "PAPER_THRESHOLD",
    "RegressionTree",
    "TrainingStats",
    "auc",
    "bin_matrix",
    "binary_metrics",
    "confusion_counts",
    "cross_validate",
    "cross_validate_scores",
    "precision_recall_curve",
    "presort_matrix",
    "restrict_presort",
    "roc_auc",
    "roc_curve",
    "stratified_kfold",
    "train_test_split",
]
