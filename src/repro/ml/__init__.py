"""Machine-learning substrate (replaces scikit-learn for this reproduction).

The paper trains a Gradient Boosting classifier [Friedman 2002] over its
212 features.  This subpackage provides a from-scratch implementation on
numpy: regression trees as base learners, stochastic gradient boosting
with binomial deviance loss, plus the evaluation metrics (precision,
recall, F1, FPR, ROC/AUC, precision-recall curves) and stratified
cross-validation used throughout Section VI.
"""

from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import (
    BinaryMetrics,
    auc,
    binary_metrics,
    confusion_counts,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)
from repro.ml.tree import RegressionTree
from repro.ml.validation import stratified_kfold, train_test_split

__all__ = [
    "BinaryMetrics",
    "GradientBoostingClassifier",
    "RegressionTree",
    "auc",
    "binary_metrics",
    "confusion_counts",
    "precision_recall_curve",
    "roc_auc",
    "roc_curve",
    "stratified_kfold",
    "train_test_split",
]
