"""Cross-validation and splitting utilities (scenario1 of the paper).

Scenario1 in Section VI-C is a 5-fold cross-validation on the training
corpora; scenario2 trains on the oldest data and predicts on newer test
sets.  This module provides the stratified splitting both need.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.ml.metrics import BinaryMetrics, binary_metrics, roc_auc


def stratified_kfold(
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs with per-class balance.

    Each class's indices are shuffled and dealt round-robin into folds, so
    every fold keeps approximately the global class ratio.
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise ValueError(f"n_splits must be >= 2, got {n_splits}")
    class_counts = [int(np.sum(y == cls)) for cls in np.unique(y)]
    if min(class_counts) < n_splits:
        raise ValueError(
            f"smallest class has {min(class_counts)} samples, "
            f"cannot make {n_splits} stratified folds"
        )
    rng = np.random.default_rng(random_state)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for cls in np.unique(y):
        indices = np.flatnonzero(y == cls)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % n_splits].append(int(index))

    all_indices = np.arange(len(y))
    for fold in folds:
        test_idx = np.asarray(sorted(fold), dtype=np.int64)
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[test_idx] = False
        yield all_indices[train_mask], test_idx


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.25,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split into ``(train_idx, test_idx)``."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(random_state)
    permutation = rng.permutation(n_samples)
    test_size = max(1, int(round(test_fraction * n_samples)))
    return (
        np.sort(permutation[test_size:]),
        np.sort(permutation[:test_size]),
    )


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    threshold: float = 0.5,
    random_state: int | None = None,
) -> dict[str, float]:
    """Run stratified k-fold CV, return pooled metrics plus mean AUC.

    ``model_factory`` must build a fresh estimator exposing
    ``fit(X, y)`` / ``predict_proba(X)``.  Predictions of all folds are
    pooled before computing the metric row (so counts match a single pass
    over the data), while AUC is averaged across folds.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    pooled_true: list[np.ndarray] = []
    pooled_pred: list[np.ndarray] = []
    aucs: list[float] = []

    for train_idx, test_idx in stratified_kfold(
        y, n_splits=n_splits, random_state=random_state
    ):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores = model.predict_proba(X[test_idx])
        pooled_true.append(y[test_idx])
        pooled_pred.append((scores >= threshold).astype(np.int64))
        aucs.append(roc_auc(y[test_idx], scores))

    metrics: BinaryMetrics = binary_metrics(
        np.concatenate(pooled_true), np.concatenate(pooled_pred)
    )
    result = metrics.as_dict()
    result["auc"] = float(np.mean(aucs))
    return result


def cross_validate_scores(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pooled out-of-fold ``(y_true, y_score)`` for curve plotting (Fig. 5)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    trues: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    for train_idx, test_idx in stratified_kfold(
        y, n_splits=n_splits, random_state=random_state
    ):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        trues.append(y[test_idx])
        scores.append(model.predict_proba(X[test_idx]))
    return np.concatenate(trues), np.concatenate(scores)
