"""Cross-validation and splitting utilities (scenario1 of the paper).

Scenario1 in Section VI-C is a 5-fold cross-validation on the training
corpora; scenario2 trains on the oldest data and predicts on newer test
sets.  This module provides the stratified splitting both need.

Folds are independent once drawn, so :func:`cross_validate` and
:func:`cross_validate_scores` can fan them out over a
:class:`repro.parallel.executor.WorkerPool` (``pool=``).  The fold
assignment is materialised **before** dispatch (the split RNG is
consumed serially) and every fold trains a fresh estimator whose seed
comes from the factory, so results are independent of schedule: pooled
metrics and AUC are identical to the serial run on every backend.  With
the ``process`` backend the ``model_factory`` and the data must be
picklable (a module-level factory function or class).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.ml.boosting import PAPER_THRESHOLD
from repro.ml.metrics import BinaryMetrics, binary_metrics, roc_auc
from repro.parallel.executor import WorkerPool


def stratified_kfold(
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs with per-class balance.

    Each class's indices are shuffled and dealt round-robin into folds, so
    every fold keeps approximately the global class ratio.
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise ValueError(f"n_splits must be >= 2, got {n_splits}")
    class_counts = [int(np.sum(y == cls)) for cls in np.unique(y)]
    if min(class_counts) < n_splits:
        raise ValueError(
            f"smallest class has {min(class_counts)} samples, "
            f"cannot make {n_splits} stratified folds"
        )
    rng = np.random.default_rng(random_state)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for cls in np.unique(y):
        indices = np.flatnonzero(y == cls)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % n_splits].append(int(index))

    all_indices = np.arange(len(y))
    for fold in folds:
        test_idx = np.asarray(sorted(fold), dtype=np.int64)
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[test_idx] = False
        yield all_indices[train_mask], test_idx


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.25,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split into ``(train_idx, test_idx)``."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(random_state)
    permutation = rng.permutation(n_samples)
    test_size = max(1, int(round(test_fraction * n_samples)))
    return (
        np.sort(permutation[test_size:]),
        np.sort(permutation[:test_size]),
    )


def _fit_score_fold(job: tuple) -> tuple[np.ndarray, np.ndarray]:
    """Fit one CV fold and return its ``(y_true, y_score)`` pair.

    Module-level (not a closure) so the ``process`` pool backend can
    pickle it; the fold's full context travels inside ``job``.
    """
    model_factory, X, y, train_idx, test_idx = job
    model = model_factory()
    model.fit(X[train_idx], y[train_idx])
    return y[test_idx], model.predict_proba(X[test_idx])


def _fold_results(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int,
    random_state: int | None,
    pool: WorkerPool | None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Out-of-fold ``(y_true, y_score)`` per fold, optionally pooled.

    The fold assignment is drawn up front in the calling thread — the
    only RNG involved — and :meth:`WorkerPool.map` preserves input
    order, so the returned list is identical for every backend.
    """
    folds = list(
        stratified_kfold(y, n_splits=n_splits, random_state=random_state)
    )
    jobs = [
        (model_factory, X, y, train_idx, test_idx)
        for train_idx, test_idx in folds
    ]
    if pool is None:
        return [_fit_score_fold(job) for job in jobs]
    return pool.map(_fit_score_fold, jobs)


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    threshold: float = PAPER_THRESHOLD,
    random_state: int | None = None,
    pool: WorkerPool | None = None,
) -> dict[str, float]:
    """Run stratified k-fold CV, return pooled metrics plus mean AUC.

    ``model_factory`` must build a fresh estimator exposing
    ``fit(X, y)`` / ``predict_proba(X)``.  Predictions of all folds are
    pooled before computing the metric row (so counts match a single pass
    over the data), while AUC is averaged across folds.  The default
    ``threshold`` is the paper's 0.7
    (:data:`repro.ml.boosting.PAPER_THRESHOLD`), matching the detector's
    decision rule.  Passing a ``pool`` trains the folds concurrently
    with results identical to the serial run (see the module docstring).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    results = _fold_results(
        model_factory, X, y, n_splits, random_state, pool
    )
    pooled_true = [fold_true for fold_true, _ in results]
    pooled_pred = [
        (fold_scores >= threshold).astype(np.int64)
        for _, fold_scores in results
    ]
    aucs = [
        roc_auc(fold_true, fold_scores) for fold_true, fold_scores in results
    ]

    metrics: BinaryMetrics = binary_metrics(
        np.concatenate(pooled_true), np.concatenate(pooled_pred)
    )
    result = metrics.as_dict()
    result["auc"] = float(np.mean(aucs))
    return result


def cross_validate_scores(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    random_state: int | None = None,
    pool: WorkerPool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pooled out-of-fold ``(y_true, y_score)`` for curve plotting (Fig. 5).

    Like :func:`cross_validate`, folds run concurrently when a ``pool``
    is given, with output identical to the serial run.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    results = _fold_results(
        model_factory, X, y, n_splits, random_state, pool
    )
    return (
        np.concatenate([fold_true for fold_true, _ in results]),
        np.concatenate([fold_scores for _, fold_scores in results]),
    )
