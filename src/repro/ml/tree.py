"""Regression trees — the base learners of gradient boosting.

A CART-style regression tree fit by exact greedy variance-reduction
splits, with three split-finding strategies sharing one split-scoring
formula:

``exact`` (the reference)
    At each node every candidate feature column is argsorted and the
    best threshold found from prefix sums of the targets — per-node cost
    ``O(features * n log n)``.  This is the seed implementation and the
    baseline every faster path is measured against.

``presort`` (exact results, no per-node sorting)
    The caller passes one **global stable argsort per feature**
    (``presort_matrix``, computed once per ensemble fit) and the tree
    propagates the sorted orders to child nodes by *partition-stable
    selection*: restricting a stable sort to a subset yields exactly the
    stable sort of that subset, so no node ever sorts again.  Split
    search is additionally vectorised across all candidate features at
    once.  Per-node cost drops to ``O(features * n)`` and the fitted
    tree is **bit-identical** to the exact path (see the ordering
    invariant below).

``histogram`` (approximate, opt-in)
    Features are quantised once per ensemble fit into at most
    ``max_bins`` quantile bins (:mod:`repro.ml.histogram`); split search
    becomes a bincount plus prefix scan per feature.  Candidate
    thresholds are restricted to bin edges, so results may differ from
    the exact path — this mode is for corpora where even the presorted
    path is too slow.

Ordering invariant (what makes presort bit-identical): node sample
index arrays are kept in **ascending order** everywhere — the root is
``arange(n)`` and children are the ascending subset of their parent.
With that canonical order, a stable argsort of a node's column breaks
ties by ascending global index, which is precisely the order obtained
by filtering the global stable argsort down to the node's samples.
Every downstream float computation (prefix sums, node means, the
boosting Newton step) therefore consumes its inputs in the same order
under both strategies, making not just the splits but every stored
float bit-identical.

Only the pieces gradient boosting needs are implemented: squared-error
fitting, optional feature subsampling, externally adjustable leaf values
(for the Newton step of binomial deviance) and fast batch prediction.
"""

from __future__ import annotations

import numpy as np

from repro.ml.histogram import BinnedMatrix

_LEAF = -1  # sentinel feature index marking a leaf node

#: Seed used when no ``rng`` is given, so feature subsampling is
#: reproducible by default (mirroring
#: ``GradientBoostingClassifier.random_state``).
DEFAULT_SEED = 0

#: Minimum gain a split must exceed (strictly) to be accepted.
_MIN_GAIN = 1e-12


def presort_matrix(X: np.ndarray) -> np.ndarray:
    """Per-feature stable argsort of ``X``: shape ``(n_features, n)``.

    Row ``f`` lists the sample indices sorted ascending by feature ``f``
    with ties broken by sample index (numpy's stable sort).  Computed
    **once per ensemble fit** and reused by every node of every boosting
    stage — targets change between stages, feature order never does.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    # int32 halves the bandwidth of every per-node partition; sample
    # counts are far below 2**31.
    return np.argsort(X.T, axis=1, kind="stable").astype(np.int32)


def restrict_presort(
    sorted_by_feature: np.ndarray,
    rows: np.ndarray,
    n_samples: int,
    sorted_vals: np.ndarray | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Presort of the submatrix ``X[rows]`` derived without re-sorting.

    ``rows`` must be ascending and unique.  Filtering each globally
    sorted row down to the subset preserves value order and (because
    ``rows`` is ascending) maps global tie-breaking onto local
    tie-breaking, so the result equals ``presort_matrix(X[rows])``
    exactly — at ``O(features * n)`` instead of a fresh
    ``O(features * n log n)`` sort.  Used by stochastic boosting to
    reuse the ensemble-level presort for per-stage subsamples.

    When ``sorted_vals`` (the pre-gathered value matrix aligned with
    ``sorted_by_feature``) is given, it is filtered under the same
    selection and ``(subset_idx, subset_vals)`` is returned, saving the
    caller a per-stage 2-D gather from ``X``.
    """
    mask = np.zeros(n_samples, dtype=bool)
    mask[rows] = True
    selected = mask[sorted_by_feature]
    n_features = sorted_by_feature.shape[0]
    subset = sorted_by_feature[selected].reshape(n_features, len(rows))
    # Rank of each surviving global index within the ascending `rows`,
    # i.e. its local row number in X[rows].
    position = np.cumsum(mask, dtype=np.int32)
    position -= 1
    local = position[subset]
    if sorted_vals is None:
        return local
    subset_vals = sorted_vals[selected].reshape(n_features, len(rows))
    return local, subset_vals


class RegressionTree:
    """A binary regression tree fit with exact greedy splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (a depth of 1 is a decision stump).
    min_samples_split:
        Do not split nodes with fewer samples than this.
    min_samples_leaf:
        Each child of a split must keep at least this many samples.
    max_features:
        Number of features examined per split; ``None`` means all.
    rng:
        Randomness for feature subsampling: a
        ``numpy.random.Generator``, an int seed, or ``None`` for the
        fixed :data:`DEFAULT_SEED` — fitting is reproducible by default.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        if rng is None:
            rng = DEFAULT_SEED
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self._rng = rng
        # Flat array representation, filled by fit().
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None
        self.n_nodes = 0
        #: Candidate (node, feature) pairs scored during the last fit.
        self.split_evaluations_ = 0
        # Plain-list mirror of the node arrays, built lazily by
        # predict_row() and dropped whenever the tree changes.
        self._flat: tuple | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sorted_idx: np.ndarray | None = None,
        binned: BinnedMatrix | None = None,
        sorted_vals: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Fit the tree to ``(X, y)`` minimising squared error.

        With no extra argument the exact per-node argsort path runs.
        Passing ``sorted_idx`` (from :func:`presort_matrix`) selects the
        presorted path — bit-identical results, no per-node sorting;
        ``sorted_vals`` optionally supplies the matching pre-gathered
        value matrix ``X[sorted_idx, arange(F)[:, None]]`` (the ensemble
        reuses one across stages when no subsampling reshuffles rows).
        Passing ``binned`` (from :func:`repro.ml.histogram.bin_matrix`)
        selects the approximate histogram path.
        """
        if sorted_idx is not None and binned is not None:
            raise ValueError("pass at most one of sorted_idx and binned")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X and y disagree: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        if sorted_idx is not None and sorted_idx.shape != (X.shape[1], len(X)):
            raise ValueError(
                f"sorted_idx must have shape {(X.shape[1], len(X))}, "
                f"got {sorted_idx.shape}"
            )

        self._features: list[int] = []
        self._thresholds: list[float] = []
        self._lefts: list[int] = []
        self._rights: list[int] = []
        self._values: list[float] = []
        self._leaf_samples: dict[int, np.ndarray] = {}
        self.split_evaluations_ = 0

        if sorted_idx is not None:
            # Gather the value and target matrices once per fit; the
            # recursion partitions them instead of re-gathering per node.
            if sorted_vals is None:
                sorted_vals = X[sorted_idx, np.arange(X.shape[1])[:, None]]
            sorted_y = y[sorted_idx]
            self._build_presorted(
                X, y, sorted_idx, sorted_vals, sorted_y,
                np.arange(len(X)), depth=0,
            )
        elif binned is not None:
            self._build_histogram(X, y, binned, np.arange(len(X)), depth=0)
        else:
            self._build_exact(X, y, np.arange(len(X)), depth=0)

        self.feature = np.asarray(self._features, dtype=np.int64)
        self.threshold = np.asarray(self._thresholds, dtype=np.float64)
        self.left = np.asarray(self._lefts, dtype=np.int64)
        self.right = np.asarray(self._rights, dtype=np.int64)
        self.value = np.asarray(self._values, dtype=np.float64)
        self.n_nodes = len(self._features)
        self._leaf_sample_indices = self._leaf_samples
        del (self._features, self._thresholds, self._lefts, self._rights,
             self._values, self._leaf_samples)
        self._flat = None
        return self

    # ------------------------------------------------------------------
    # shared node plumbing
    # ------------------------------------------------------------------
    def _open_node(self, y: np.ndarray, indices: np.ndarray) -> int:
        """Append a provisional leaf for ``indices`` and return its id."""
        node_id = len(self._features)
        self._features.append(_LEAF)
        self._thresholds.append(0.0)
        self._lefts.append(-1)
        self._rights.append(-1)
        self._values.append(float(y[indices].mean()))
        return node_id

    def _splittable(self, indices: np.ndarray, depth: int) -> bool:
        return (
            depth < self.max_depth
            and len(indices) >= self.min_samples_split
        )

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    # ------------------------------------------------------------------
    # exact path (the seed reference)
    # ------------------------------------------------------------------
    def _build_exact(
        self, X: np.ndarray, y: np.ndarray, indices: np.ndarray, depth: int
    ) -> int:
        node_id = self._open_node(y, indices)
        if not self._splittable(indices, depth):
            self._leaf_samples[node_id] = indices
            return node_id
        split = self._best_split(X, y, indices)
        if split is None:
            self._leaf_samples[node_id] = indices
            return node_id
        feat, thresh, left_idx, right_idx = split
        self._features[node_id] = feat
        self._thresholds[node_id] = thresh
        self._lefts[node_id] = self._build_exact(X, y, left_idx, depth + 1)
        self._rights[node_id] = self._build_exact(X, y, right_idx, depth + 1)
        return node_id

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, indices: np.ndarray
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """Best (feature, threshold) by variance reduction, or None."""
        y_node = y[indices]
        n = len(indices)
        best_gain = _MIN_GAIN  # require strictly positive gain
        best = None
        node_sum = y_node.sum()
        node_sq = float(y_node @ y_node)
        parent_sse = node_sq - node_sum * node_sum / n

        candidates = self._candidate_features(X.shape[1])
        self.split_evaluations_ += len(candidates)
        for feat in candidates:
            column = X[indices, feat]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y_node[order]
            # Split positions: between distinct consecutive values only.
            cumsum = np.cumsum(sorted_y)
            counts = np.arange(1, n)
            left_sum = cumsum[:-1]
            right_sum = node_sum - left_sum
            left_n = counts
            right_n = n - counts
            # SSE(parent) - SSE(children) differs from the expression below
            # only by constants, so maximising it maximises variance gain.
            score = left_sum**2 / left_n + right_sum**2 / right_n
            valid = sorted_vals[1:] != sorted_vals[:-1]
            if self.min_samples_leaf > 1:
                valid &= (left_n >= self.min_samples_leaf) & (
                    right_n >= self.min_samples_leaf
                )
            if not valid.any():
                continue
            score = np.where(valid, score, -np.inf)
            pos = int(np.argmax(score))
            gain = float(score[pos]) - node_sum * node_sum / n
            if gain > best_gain and parent_sse > 0:
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                best_gain = gain
                best = (int(feat), float(threshold), order, pos)

        if best is None:
            return None
        feat, threshold, order, pos = best
        # Children in ascending sample order — the canonical ordering
        # that makes tie-breaking (and every downstream float reduction)
        # independent of the path of split features, and therefore
        # reproducible by the presorted partition propagation.
        left_idx = np.sort(indices[order[: pos + 1]])
        right_idx = np.sort(indices[order[pos + 1:]])
        return feat, threshold, left_idx, right_idx

    # ------------------------------------------------------------------
    # presorted path (bit-identical, no per-node sorting)
    # ------------------------------------------------------------------
    def _build_presorted(
        self,
        X: np.ndarray,
        y: np.ndarray,
        node_sorted: np.ndarray,
        node_vals: np.ndarray,
        node_y: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> int:
        node_id = self._open_node(y, indices)
        if not self._splittable(indices, depth):
            self._leaf_samples[node_id] = indices
            return node_id
        split = self._best_split_presorted(
            X, y, node_vals, node_y, indices
        )
        if split is None:
            self._leaf_samples[node_id] = indices
            return node_id
        feat, thresh, pos = split
        # Partition-stable propagation: mark the left samples (a prefix
        # of the winning feature's sorted row) and filter every sorted
        # row through the mask.  Boolean selection preserves per-row
        # order, so each child row remains the stable sort of the child
        # subset; `indices` stays ascending for the same reason.  The
        # value and target matrices partition under the same mask, so no
        # node below ever gathers from X or y again.
        mask = np.zeros(len(X), dtype=bool)
        mask[node_sorted[feat, : pos + 1]] = True
        in_left = mask[indices]
        left_idx = indices[in_left]
        right_idx = indices[~in_left]
        n_features = node_sorted.shape[0]
        n_left = pos + 1
        n_right = node_sorted.shape[1] - n_left
        # Partition the big matrices only for children that can still
        # split — children at the depth limit (or below the sample
        # minimum) become leaves without ever touching them, which skips
        # the entire last level's partitions.
        left_splittable = self._splittable(left_idx, depth + 1)
        right_splittable = self._splittable(right_idx, depth + 1)
        selected = unselected = None
        if left_splittable or right_splittable:
            selected = mask[node_sorted]
        if right_splittable:
            unselected = ~selected
        self._features[node_id] = feat
        self._thresholds[node_id] = thresh
        if left_splittable:
            left_child = self._build_presorted(
                X, y,
                node_sorted[selected].reshape(n_features, n_left),
                node_vals[selected].reshape(n_features, n_left),
                node_y[selected].reshape(n_features, n_left),
                left_idx, depth + 1,
            )
        else:
            left_child = self._open_node(y, left_idx)
            self._leaf_samples[left_child] = left_idx
        if right_splittable:
            right_child = self._build_presorted(
                X, y,
                node_sorted[unselected].reshape(n_features, n_right),
                node_vals[unselected].reshape(n_features, n_right),
                node_y[unselected].reshape(n_features, n_right),
                right_idx, depth + 1,
            )
        else:
            right_child = self._open_node(y, right_idx)
            self._leaf_samples[right_child] = right_idx
        self._lefts[node_id] = left_child
        self._rights[node_id] = right_child
        return node_id

    def _best_split_presorted(
        self,
        X: np.ndarray,
        y: np.ndarray,
        node_vals: np.ndarray,
        node_y: np.ndarray,
        indices: np.ndarray,
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """Presorted split search, vectorised across candidate features.

        Scores every candidate feature's every boundary in one set of
        2-D array operations.  Each row of the intermediate matrices is
        elementwise identical to the arrays the exact path builds for
        that feature (same elements, same order, same expressions), and
        first-maximum ``argmax`` tie-breaking matches the exact path's
        strict-improvement scan, so the chosen split is bit-identical.
        """
        n = len(indices)
        y_node = y[indices]
        node_sum = y_node.sum()
        node_sq = float(y_node @ y_node)
        parent_score = node_sum * node_sum / n
        parent_sse = node_sq - parent_score

        # Candidates are drawn before any early return so the rng
        # stream matches the exact path draw-for-draw.
        candidates = self._candidate_features(X.shape[1])
        self.split_evaluations_ += len(candidates)
        if n < 2 or not parent_sse > 0:
            return None
        if len(candidates) == node_vals.shape[0]:
            sorted_vals, sorted_y = node_vals, node_y  # all features
        else:
            sorted_vals = node_vals[candidates]           # (C, n)
            sorted_y = node_y[candidates]
        # Prefix sums over the first n-1 positions only (the candidate
        # boundaries) — identical values to cumsum-then-slice, but the
        # result is contiguous and the in-place expressions below reuse
        # its buffers.  Every arithmetic step matches the exact path's
        # ``left_sum**2 / left_n + right_sum**2 / right_n`` bit for bit.
        counts = np.arange(1, n)
        left_n = counts
        right_n = n - counts
        left_sum = np.cumsum(sorted_y[:, :-1], axis=1)
        right_sum = node_sum - left_sum
        score = left_sum * left_sum
        score /= left_n
        np.multiply(right_sum, right_sum, out=right_sum)
        right_sum /= right_n
        score += right_sum
        valid = sorted_vals[:, 1:] != sorted_vals[:, :-1]
        if self.min_samples_leaf > 1:
            valid &= (left_n >= self.min_samples_leaf) & (
                right_n >= self.min_samples_leaf
            )
        np.logical_not(valid, out=valid)
        score[valid] = -np.inf
        pos = np.argmax(score, axis=1)                    # first max per row
        gains = score[np.arange(len(candidates)), pos] - parent_score
        best_row = int(np.argmax(gains))                  # first max feature
        if not gains[best_row] > _MIN_GAIN:
            return None
        best_pos = int(pos[best_row])
        threshold = 0.5 * (
            sorted_vals[best_row, best_pos] + sorted_vals[best_row, best_pos + 1]
        )
        return int(candidates[best_row]), float(threshold), best_pos

    # ------------------------------------------------------------------
    # histogram path (approximate, opt-in)
    # ------------------------------------------------------------------
    def _build_histogram(
        self,
        X: np.ndarray,
        y: np.ndarray,
        binned: BinnedMatrix,
        indices: np.ndarray,
        depth: int,
    ) -> int:
        node_id = self._open_node(y, indices)
        if not self._splittable(indices, depth):
            self._leaf_samples[node_id] = indices
            return node_id
        split = self._best_split_histogram(y, binned, indices)
        if split is None:
            self._leaf_samples[node_id] = indices
            return node_id
        feat, thresh, bin_id = split
        go_left = binned.codes[indices, feat] <= bin_id
        left_idx = indices[go_left]
        right_idx = indices[~go_left]
        self._features[node_id] = feat
        self._thresholds[node_id] = thresh
        self._lefts[node_id] = self._build_histogram(
            X, y, binned, left_idx, depth + 1
        )
        self._rights[node_id] = self._build_histogram(
            X, y, binned, right_idx, depth + 1
        )
        return node_id

    def _best_split_histogram(
        self, y: np.ndarray, binned: BinnedMatrix, indices: np.ndarray
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """Histogram split search: bincount + prefix scan per feature.

        Candidate thresholds are the bin edges only, which is what makes
        this path approximate; the gain formula and acceptance rule are
        shared with the exact paths.
        """
        n = len(indices)
        width = binned.width
        if n < 2 or width < 2:
            return None
        y_node = y[indices]
        node_sum = y_node.sum()
        node_sq = float(y_node @ y_node)
        parent_score = node_sum * node_sum / n
        parent_sse = node_sq - parent_score
        if not parent_sse > 0:
            return None

        candidates = self._candidate_features(binned.codes.shape[1])
        self.split_evaluations_ += len(candidates)
        codes = binned.codes[indices][:, candidates]      # (n, C)
        n_cand = len(candidates)
        flat = (codes + np.arange(n_cand, dtype=np.int32) * width).ravel()
        sums = np.bincount(
            flat, weights=np.repeat(y_node, n_cand), minlength=n_cand * width
        ).reshape(n_cand, width)
        cnts = np.bincount(flat, minlength=n_cand * width).reshape(
            n_cand, width
        )
        left_sum = np.cumsum(sums, axis=1)[:, :-1]        # split after bin b
        left_n = np.cumsum(cnts, axis=1)[:, :-1]
        right_sum = node_sum - left_sum
        right_n = n - left_n
        n_cuts = np.array([len(binned.cuts[f]) for f in candidates])
        min_leaf = self.min_samples_leaf
        valid = (
            (np.arange(width - 1) < n_cuts[:, None])
            & (left_n >= min_leaf)
            & (right_n >= min_leaf)
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = left_sum**2 / left_n + right_sum**2 / right_n
        score = np.where(valid, raw, -np.inf)
        pos = np.argmax(score, axis=1)
        gains = score[np.arange(n_cand), pos] - parent_score
        best_row = int(np.argmax(gains))
        if not gains[best_row] > _MIN_GAIN:
            return None
        feat = int(candidates[best_row])
        bin_id = int(pos[best_row])
        return feat, float(binned.cuts[feat][bin_id]), bin_id

    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf node id reached by each row of ``X``."""
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        node_ids = np.zeros(len(X), dtype=np.int64)
        active = np.arange(len(X))
        while len(active):
            nodes = node_ids[active]
            feats = self.feature[nodes]
            internal = feats != _LEAF
            active = active[internal]
            if not len(active):
                break
            nodes = node_ids[active]
            go_left = X[active, self.feature[nodes]] <= self.threshold[nodes]
            node_ids[active] = np.where(
                go_left, self.left[nodes], self.right[nodes]
            )
        return node_ids

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict the leaf value for each row of ``X``."""
        return self.value[self.apply(X)]

    def predict_row(self, row: np.ndarray) -> float:
        """Leaf value for a single row — the scalar hot path.

        Per-page scoring (``predict_proba`` on one snapshot) would pay
        numpy array overhead ``n_estimators`` times per page through
        :meth:`apply`; this walks the tree with plain Python lists
        instead.  ``value.tolist()`` round-trips float64 exactly, so the
        result is bit-identical to ``predict(row.reshape(1, -1))[0]``.
        """
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        if self._flat is None:
            self._flat = (
                self.feature.tolist(),
                self.threshold.tolist(),
                self.left.tolist(),
                self.right.tolist(),
                self.value.tolist(),
            )
        feature, threshold, left, right, value = self._flat
        node = 0
        feat = feature[0]
        while feat != _LEAF:
            node = left[node] if row[feat] <= threshold[node] else right[node]
            feat = feature[node]
        return value[node]

    # ------------------------------------------------------------------
    def leaf_ids(self) -> np.ndarray:
        """Ids of all leaf nodes."""
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        return np.flatnonzero(self.feature == _LEAF)

    def training_samples_in_leaf(self, leaf_id: int) -> np.ndarray:
        """Training-set row indices that ended in ``leaf_id`` during fit."""
        return self._leaf_sample_indices[leaf_id]

    def set_leaf_value(self, leaf_id: int, value: float) -> None:
        """Overwrite a leaf's prediction (used by the boosting Newton step)."""
        if self.feature[leaf_id] != _LEAF:
            raise ValueError(f"node {leaf_id} is not a leaf")
        self.value[leaf_id] = value
        self._flat = None

    @property
    def depth_used(self) -> int:
        """Actual depth of the fitted tree."""
        if self.feature is None:
            raise RuntimeError("tree is not fitted")

        def depth_of(node: int) -> int:
            if self.feature[node] == _LEAF:
                return 0
            return 1 + max(depth_of(self.left[node]), depth_of(self.right[node]))

        return depth_of(0)
