"""Regression trees — the base learners of gradient boosting.

A CART-style regression tree fit by exact greedy variance-reduction
splits.  The implementation is vectorised with numpy: at each node, every
candidate feature is argsorted once and the best threshold is found from
prefix sums of the targets, so the per-node cost is
``O(features * n log n)``.

Only the pieces gradient boosting needs are implemented: squared-error
fitting, optional feature subsampling, externally adjustable leaf values
(for the Newton step of binomial deviance) and fast batch prediction.
"""

from __future__ import annotations

import numpy as np

_LEAF = -1  # sentinel feature index marking a leaf node


class RegressionTree:
    """A binary regression tree fit with exact greedy splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (a depth of 1 is a decision stump).
    min_samples_split:
        Do not split nodes with fewer samples than this.
    min_samples_leaf:
        Each child of a split must keep at least this many samples.
    max_features:
        Number of features examined per split; ``None`` means all.
    rng:
        ``numpy.random.Generator`` used for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        # Flat array representation, filled by fit().
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None
        self.n_nodes = 0
        # Plain-list mirror of the node arrays, built lazily by
        # predict_row() and dropped whenever the tree changes.
        self._flat: tuple | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit the tree to ``(X, y)`` minimising squared error."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X and y disagree: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        leaf_sample_indices: dict[int, np.ndarray] = {}

        def build(indices: np.ndarray, depth: int) -> int:
            node_id = len(features)
            features.append(_LEAF)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(float(y[indices].mean()))

            if depth >= self.max_depth or len(indices) < self.min_samples_split:
                leaf_sample_indices[node_id] = indices
                return node_id
            split = self._best_split(X, y, indices)
            if split is None:
                leaf_sample_indices[node_id] = indices
                return node_id
            feat, thresh, left_idx, right_idx = split
            features[node_id] = feat
            thresholds[node_id] = thresh
            lefts[node_id] = build(left_idx, depth + 1)
            rights[node_id] = build(right_idx, depth + 1)
            return node_id

        build(np.arange(len(X)), depth=0)
        self.feature = np.asarray(features, dtype=np.int64)
        self.threshold = np.asarray(thresholds, dtype=np.float64)
        self.left = np.asarray(lefts, dtype=np.int64)
        self.right = np.asarray(rights, dtype=np.int64)
        self.value = np.asarray(values, dtype=np.float64)
        self.n_nodes = len(features)
        self._leaf_sample_indices = leaf_sample_indices
        self._flat = None
        return self

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, X, y, indices):
        """Best (feature, threshold) by variance reduction, or None."""
        y_node = y[indices]
        n = len(indices)
        best_gain = 1e-12  # require strictly positive gain
        best = None
        node_sum = y_node.sum()
        node_sq = float(y_node @ y_node)
        parent_sse = node_sq - node_sum * node_sum / n

        for feat in self._candidate_features(X.shape[1]):
            column = X[indices, feat]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y_node[order]
            # Split positions: between distinct consecutive values only.
            cumsum = np.cumsum(sorted_y)
            counts = np.arange(1, n)
            left_sum = cumsum[:-1]
            right_sum = node_sum - left_sum
            left_n = counts
            right_n = n - counts
            # SSE(parent) - SSE(children) differs from the expression below
            # only by constants, so maximising it maximises variance gain.
            score = left_sum**2 / left_n + right_sum**2 / right_n
            valid = sorted_vals[1:] != sorted_vals[:-1]
            if self.min_samples_leaf > 1:
                valid &= (left_n >= self.min_samples_leaf) & (
                    right_n >= self.min_samples_leaf
                )
            if not valid.any():
                continue
            score = np.where(valid, score, -np.inf)
            pos = int(np.argmax(score))
            gain = float(score[pos]) - node_sum * node_sum / n
            if gain > best_gain and parent_sse > 0:
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                best_gain = gain
                best = (int(feat), float(threshold), order, pos)

        if best is None:
            return None
        feat, threshold, order, pos = best
        left_idx = indices[order[: pos + 1]]
        right_idx = indices[order[pos + 1:]]
        return feat, threshold, left_idx, right_idx

    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf node id reached by each row of ``X``."""
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        node_ids = np.zeros(len(X), dtype=np.int64)
        active = np.arange(len(X))
        while len(active):
            nodes = node_ids[active]
            feats = self.feature[nodes]
            internal = feats != _LEAF
            active = active[internal]
            if not len(active):
                break
            nodes = node_ids[active]
            go_left = X[active, self.feature[nodes]] <= self.threshold[nodes]
            node_ids[active] = np.where(
                go_left, self.left[nodes], self.right[nodes]
            )
        return node_ids

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict the leaf value for each row of ``X``."""
        return self.value[self.apply(X)]

    def predict_row(self, row) -> float:
        """Leaf value for a single row — the scalar hot path.

        Per-page scoring (``predict_proba`` on one snapshot) would pay
        numpy array overhead ``n_estimators`` times per page through
        :meth:`apply`; this walks the tree with plain Python lists
        instead.  ``value.tolist()`` round-trips float64 exactly, so the
        result is bit-identical to ``predict(row.reshape(1, -1))[0]``.
        """
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        if self._flat is None:
            self._flat = (
                self.feature.tolist(),
                self.threshold.tolist(),
                self.left.tolist(),
                self.right.tolist(),
                self.value.tolist(),
            )
        feature, threshold, left, right, value = self._flat
        node = 0
        feat = feature[0]
        while feat != _LEAF:
            node = left[node] if row[feat] <= threshold[node] else right[node]
            feat = feature[node]
        return value[node]

    # ------------------------------------------------------------------
    def leaf_ids(self) -> np.ndarray:
        """Ids of all leaf nodes."""
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        return np.flatnonzero(self.feature == _LEAF)

    def training_samples_in_leaf(self, leaf_id: int) -> np.ndarray:
        """Training-set row indices that ended in ``leaf_id`` during fit."""
        return self._leaf_sample_indices[leaf_id]

    def set_leaf_value(self, leaf_id: int, value: float) -> None:
        """Overwrite a leaf's prediction (used by the boosting Newton step)."""
        if self.feature[leaf_id] != _LEAF:
            raise ValueError(f"node {leaf_id} is not a leaf")
        self.value[leaf_id] = value
        self._flat = None

    @property
    def depth_used(self) -> int:
        """Actual depth of the fitted tree."""
        if self.feature is None:
            raise RuntimeError("tree is not fitted")

        def depth_of(node: int) -> int:
            if self.feature[node] == _LEAF:
                return 0
            return 1 + max(depth_of(self.left[node]), depth_of(self.right[node]))

        return depth_of(0)
