"""Logistic regression — the linear baseline learner.

The URL-lexical baselines the paper compares against (Ma et al., Thomas
et al.) train linear models over huge sparse bag-of-words features.  This
is a dense mini-batch gradient-descent implementation with L2
regularisation, sufficient for the hashed feature spaces our baselines
use.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(raw: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))


class LogisticRegression:
    """Binary logistic regression trained by mini-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Step size of the gradient updates.
    l2:
        L2 regularisation strength (applied to weights, not the bias).
    epochs:
        Passes over the training data.
    batch_size:
        Mini-batch size.
    random_state:
        Seed for data shuffling.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        epochs: int = 30,
        batch_size: int = 64,
        random_state: int | None = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.random_state = random_state
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on features ``X`` and binary labels ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError(
                f"bad shapes: X {X.shape}, y {y.shape}"
            )
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        self.weights = np.zeros(d)
        self.bias = 0.0

        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                rows = order[start:start + self.batch_size]
                batch_x = X[rows]
                error = _sigmoid(batch_x @ self.weights + self.bias) - y[rows]
                gradient = batch_x.T @ error / len(rows)
                self.weights -= self.learning_rate * (
                    gradient + self.l2 * self.weights
                )
                self.bias -= self.learning_rate * float(error.mean())
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probability for each row of ``X``."""
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return _sigmoid(X @ self.weights + self.bias)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at ``threshold``."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)
