"""Lightweight training instrumentation for the boosting engine.

:class:`TrainingStats` summarises one
:meth:`repro.ml.boosting.GradientBoostingClassifier.fit`: per-stage wall
times, the one-off preparation cost (the global presort or the feature
binning, depending on ``tree_method``), and split-search counters
aggregated over every tree.  Since the observability layer landed, the
timings come from the fit's ``train.*`` span tree
(:meth:`TrainingStats.from_spans`) rather than bespoke timer calls, so
the same numbers are available to trace exporters and to the
machine-readable training benchmark
(``benchmarks/test_training_speed.py`` →
``benchmarks/results/training.json``) and the ``ext-training`` CLI
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import Span


@dataclass
class TrainingStats:
    """Timing and split-search counters for one ensemble ``fit``.

    Attributes
    ----------
    tree_method:
        Split-finding strategy used (``exact``/``presort``/``histogram``).
    n_samples, n_features:
        Shape of the training matrix.
    prep_seconds:
        One-off preparation paid before the first stage: the global
        stable argsort (presort) or the quantile binning (histogram);
        0.0 for the exact path.
    stage_seconds:
        Wall time of each boosting stage (tree fit + Newton step +
        raw-score update).
    nodes_built:
        Total tree nodes created across all stages.
    split_evaluations:
        Candidate ``(node, feature)`` pairs scored across all stages —
        the unit of split-search work all three methods share.
    """

    tree_method: str
    n_samples: int = 0
    n_features: int = 0
    prep_seconds: float = 0.0
    stage_seconds: list[float] = field(default_factory=list)
    nodes_built: int = 0
    split_evaluations: int = 0

    @classmethod
    def from_spans(
        cls,
        fit_span: "Span",
        nodes_built: int = 0,
        split_evaluations: int = 0,
    ) -> "TrainingStats":
        """Stats distilled from a ``train.fit`` span tree.

        ``fit_span`` is the root span recorded by
        :meth:`~repro.ml.boosting.GradientBoostingClassifier.fit`
        (attrs carry the matrix shape and tree method; children are one
        ``train.prep`` plus one ``train.stage`` per boosting stage).
        """
        stats = cls(
            tree_method=str(fit_span.attrs.get("tree_method", "")),
            n_samples=int(fit_span.attrs.get("n_samples", 0)),
            n_features=int(fit_span.attrs.get("n_features", 0)),
            nodes_built=nodes_built,
            split_evaluations=split_evaluations,
        )
        for child in fit_span.children:
            if child.name == "train.prep":
                stats.prep_seconds = child.duration
            elif child.name == "train.stage":
                stats.stage_seconds.append(child.duration)
        return stats

    @property
    def n_stages(self) -> int:
        """Number of boosting stages timed."""
        return len(self.stage_seconds)

    @property
    def total_seconds(self) -> float:
        """End-to-end fit time: preparation plus every stage."""
        return self.prep_seconds + float(sum(self.stage_seconds))

    @property
    def stages_per_sec(self) -> float:
        """Boosting stages fit per second (the fit-throughput number)."""
        total = self.total_seconds
        return self.n_stages / total if total > 0 else float("inf")

    def as_dict(self) -> dict:
        """Machine-readable summary for benchmark artifacts."""
        stage = np.asarray(self.stage_seconds, dtype=np.float64)
        return {
            "tree_method": self.tree_method,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "n_stages": self.n_stages,
            "prep_seconds": self.prep_seconds,
            "total_seconds": self.total_seconds,
            "stages_per_sec": self.stages_per_sec,
            "stage_seconds_mean": float(stage.mean()) if len(stage) else 0.0,
            "stage_seconds_max": float(stage.max()) if len(stage) else 0.0,
            "nodes_built": self.nodes_built,
            "split_evaluations": self.split_evaluations,
        }
