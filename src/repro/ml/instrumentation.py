"""Lightweight training instrumentation for the boosting engine.

:class:`TrainingStats` is filled in by
:meth:`repro.ml.boosting.GradientBoostingClassifier.fit`: per-stage wall
times, the one-off preparation cost (the global presort or the feature
binning, depending on ``tree_method``), and split-search counters
aggregated over every tree.  The numbers feed the machine-readable
training benchmark (``benchmarks/test_training_speed.py`` →
``benchmarks/results/training.json``) and the ``ext-training`` CLI
experiment, and cost only a ``perf_counter`` call per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrainingStats:
    """Timing and split-search counters for one ensemble ``fit``.

    Attributes
    ----------
    tree_method:
        Split-finding strategy used (``exact``/``presort``/``histogram``).
    n_samples, n_features:
        Shape of the training matrix.
    prep_seconds:
        One-off preparation paid before the first stage: the global
        stable argsort (presort) or the quantile binning (histogram);
        0.0 for the exact path.
    stage_seconds:
        Wall time of each boosting stage (tree fit + Newton step +
        raw-score update).
    nodes_built:
        Total tree nodes created across all stages.
    split_evaluations:
        Candidate ``(node, feature)`` pairs scored across all stages —
        the unit of split-search work all three methods share.
    """

    tree_method: str
    n_samples: int = 0
    n_features: int = 0
    prep_seconds: float = 0.0
    stage_seconds: list[float] = field(default_factory=list)
    nodes_built: int = 0
    split_evaluations: int = 0

    @property
    def n_stages(self) -> int:
        """Number of boosting stages timed."""
        return len(self.stage_seconds)

    @property
    def total_seconds(self) -> float:
        """End-to-end fit time: preparation plus every stage."""
        return self.prep_seconds + float(sum(self.stage_seconds))

    @property
    def stages_per_sec(self) -> float:
        """Boosting stages fit per second (the fit-throughput number)."""
        total = self.total_seconds
        return self.n_stages / total if total > 0 else float("inf")

    def as_dict(self) -> dict:
        """Machine-readable summary for benchmark artifacts."""
        stage = np.asarray(self.stage_seconds, dtype=np.float64)
        return {
            "tree_method": self.tree_method,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "n_stages": self.n_stages,
            "prep_seconds": self.prep_seconds,
            "total_seconds": self.total_seconds,
            "stages_per_sec": self.stages_per_sec,
            "stage_seconds_mean": float(stage.mean()) if len(stage) else 0.0,
            "stage_seconds_max": float(stage.max()) if len(stage) else 0.0,
            "nodes_built": self.nodes_built,
            "split_evaluations": self.split_evaluations,
        }
