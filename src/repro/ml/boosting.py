"""Stochastic gradient boosting with binomial deviance loss.

Implements Friedman's gradient boosting machine [18, 19 in the paper] for
binary classification, the model the paper selects for its phishing
detector (Section IV-C):

* the model is an additive ensemble ``F_M(x) = F_0 + lr * sum_m h_m(x)``
  of regression trees fit to the negative gradient of the loss;
* binomial deviance loss ``L(y, F) = log(1 + exp(-2(2y-1)F))`` in its
  standard logistic parameterisation: the pseudo-residual at stage ``m``
  is ``y - sigmoid(F_{m-1}(x))``;
* each leaf's value is refined with a one-step Newton update,
  ``sum(residual) / sum(p * (1 - p))``;
* optional stochastic subsampling of rows per stage [Friedman 2002].

``predict_proba`` returns the confidence values in ``[0, 1]`` that the
paper thresholds at 0.7 to favour predicting the legitimate class.

Training performance: the ensemble trains its trees through one of
three split-finding strategies (``tree_method``).  The default
``"presort"`` computes **one global stable argsort of the feature
matrix per fit** and propagates it to every node of every stage by
partition-stable selection — feature order never changes between
boosting stages, only the targets do — producing trees bit-identical to
the reference ``"exact"`` path without ever re-sorting.  The opt-in
``"histogram"`` mode quantises features once per fit into at most
``max_bins`` quantile bins (approximate; for large corpora).  Stage
subsamples are drawn and then sorted ascending: the sample *set* is
unchanged, and the canonical order is what lets the presorted and exact
paths agree bit-for-bit.  Each ``fit`` records timing and split-search
counters in ``fit_stats_``
(:class:`repro.ml.instrumentation.TrainingStats`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ml.compiled import CompiledEnsemble
from repro.ml.compiled import sigmoid as _sigmoid
from repro.ml.histogram import bin_matrix
from repro.ml.instrumentation import TrainingStats
from repro.ml.tree import RegressionTree, presort_matrix, restrict_presort
from repro.obs.trace import AnyTracer, Tracer

#: Split-finding strategies accepted by :class:`GradientBoostingClassifier`.
TREE_METHODS = ("exact", "presort", "histogram")

#: The paper's discrimination threshold (Section VI-A): confidences in
#: ``[0, 0.7)`` predict legitimate, ``[0.7, 1]`` predict phishing,
#: deliberately favouring the legitimate class.  Single-sourced here so
#: the classifier default and :data:`repro.core.detector.DEFAULT_THRESHOLD`
#: cannot drift apart.
PAPER_THRESHOLD = 0.7


class GradientBoostingClassifier:
    """Binary gradient-boosted trees classifier.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages (trees).
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth:
        Depth of the regression-tree base learners.
    subsample:
        Fraction of training rows drawn (without replacement) per stage;
        1.0 disables stochastic boosting.
    min_samples_leaf:
        Minimum samples per tree leaf.
    max_features:
        Features examined per split; ``None`` means all.
    random_state:
        Seed for subsampling and feature subsampling.
    tree_method:
        Split-finding strategy: ``"presort"`` (default; one global
        argsort per fit, bit-identical to ``"exact"``), ``"exact"``
        (per-node argsort, the reference), or ``"histogram"``
        (quantile-binned, approximate, fastest on large corpora).
    max_bins:
        Maximum quantile bins per feature for ``tree_method="histogram"``;
        ignored by the exact paths.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | None = None,
        tree_method: str = "presort",
        max_bins: int = 64,
    ) -> None:
        if not 0 < subsample <= 1:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if tree_method not in TREE_METHODS:
            raise ValueError(
                f"unknown tree_method {tree_method!r}; "
                f"expected one of {TREE_METHODS}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins
        self._trees: list[RegressionTree] = []
        self._initial_raw = 0.0
        self._compiled: CompiledEnsemble | None = None
        self.n_features_in_: int | None = None
        #: Timing + split-search counters of the last fit.
        self.fit_stats_: TrainingStats | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        tracer: AnyTracer | None = None,
    ) -> "GradientBoostingClassifier":
        """Fit the ensemble on features ``X`` and binary labels ``y``.

        ``tracer`` optionally receives the per-stage spans
        (``train.fit`` → ``train.prep`` + one ``train.stage`` each);
        without one the spans are recorded into a private tracer, which
        is also where ``fit_stats_`` now comes from
        (:meth:`~repro.ml.instrumentation.TrainingStats.from_spans`).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X and y disagree: {len(X)} vs {len(y)}")
        if not set(np.unique(y)) <= {0.0, 1.0}:
            raise ValueError("labels must be binary (0/1)")

        rng = np.random.default_rng(self.random_state)
        n = len(y)
        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self._initial_raw = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(n, self._initial_raw)
        self._trees = []
        self._compiled = None
        self.n_features_in_ = X.shape[1]
        self.train_deviance_: list[float] = []
        nodes_built = 0
        split_evaluations = 0
        # Spans always record somewhere: into the caller's tracer when a
        # live one is injected, else into a private one — either way
        # `fit_stats_` is derived from the span tree afterwards.
        rec = tracer if isinstance(tracer, Tracer) else Tracer()
        with rec.span(
            "train.fit",
            tree_method=self.tree_method,
            n_samples=n,
            n_features=int(X.shape[1]),
            n_estimators=self.n_estimators,
        ) as fit_span:
            # One-off preparation, shared by every stage: feature order
            # never changes between stages (only the targets do), so the
            # presort / binning of X is computed exactly once per fit.
            with rec.span("train.prep"):
                sorted_all = sorted_vals_all = None
                if self.tree_method == "presort":
                    sorted_all = presort_matrix(X)
                    sorted_vals_all = X[
                        sorted_all, np.arange(X.shape[1])[:, None]
                    ]
                binned_all = (
                    bin_matrix(X, self.max_bins)
                    if self.tree_method == "histogram" else None
                )

            for _stage in range(self.n_estimators):
                with rec.span("train.stage"):
                    prob = _sigmoid(raw)
                    residual = y - prob

                    if self.subsample < 1.0:
                        sample_size = max(1, int(round(self.subsample * n)))
                        # The draw is sorted ascending: the sample set is
                        # unchanged and the canonical order makes the fit
                        # independent of draw order — the invariant that
                        # lets the presorted path replicate the exact
                        # path bit-for-bit.
                        rows = np.sort(
                            rng.choice(n, size=sample_size, replace=False)
                        )
                    else:
                        rows = np.arange(n)

                    tree = RegressionTree(
                        max_depth=self.max_depth,
                        min_samples_leaf=self.min_samples_leaf,
                        max_features=self.max_features,
                        rng=rng,
                    )
                    if sorted_all is not None:
                        if len(rows) == n:
                            tree.fit(
                                X, residual, sorted_idx=sorted_all,
                                sorted_vals=sorted_vals_all,
                            )
                        else:
                            sub_sorted, sub_vals = restrict_presort(
                                sorted_all, rows, n, sorted_vals_all
                            )
                            tree.fit(
                                X[rows], residual[rows],
                                sorted_idx=sub_sorted, sorted_vals=sub_vals,
                            )
                    elif binned_all is not None:
                        binned = (
                            binned_all if len(rows) == n
                            else binned_all.take_rows(rows)
                        )
                        tree.fit(X[rows], residual[rows], binned=binned)
                    else:
                        tree.fit(X[rows], residual[rows])

                    # Newton step: replace each leaf mean with the
                    # deviance-optimal value computed from the samples
                    # that reached that leaf.
                    hessian = prob * (1 - prob)
                    for leaf in tree.leaf_ids():
                        leaf_rows = rows[tree.training_samples_in_leaf(leaf)]
                        numerator = residual[leaf_rows].sum()
                        denominator = hessian[leaf_rows].sum()
                        if denominator < 1e-12:
                            tree.set_leaf_value(leaf, 0.0)
                        else:
                            tree.set_leaf_value(
                                leaf, float(numerator / denominator)
                            )

                    raw = raw + self.learning_rate * tree.predict(X)
                    self._trees.append(tree)
                    self.train_deviance_.append(self._deviance(y, raw))
                    nodes_built += tree.n_nodes
                    split_evaluations += tree.split_evaluations_

            # Flatten the finished ensemble for level-wise batch
            # inference while the fit span is still open, so compile
            # cost is visible in the same trace as the fit it belongs
            # to.  (TrainingStats ignores unknown child span names.)
            with rec.span("train.compile", n_trees=len(self._trees)):
                self._compiled = CompiledEnsemble.from_trees(
                    self._trees,
                    initial_raw=self._initial_raw,
                    learning_rate=self.learning_rate,
                    n_features=int(X.shape[1]),
                )
        self.fit_stats_ = TrainingStats.from_spans(
            fit_span,
            nodes_built=nodes_built,
            split_evaluations=split_evaluations,
        )
        return self

    @staticmethod
    def _deviance(y: np.ndarray, raw: np.ndarray) -> float:
        prob = _sigmoid(raw)
        eps = 1e-12
        return float(
            -np.mean(y * np.log(prob + eps) + (1 - y) * np.log(1 - prob + eps))
        )

    # ------------------------------------------------------------------
    def _check_fitted(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (*, {self.n_features_in_}), got {X.shape}"
            )
        return X

    def compiled(self) -> CompiledEnsemble:
        """The level-wise compiled form of the fitted ensemble.

        Compiled eagerly at the end of :meth:`fit` (under the
        ``train.compile`` span) and lazily here for models rebuilt via
        :meth:`from_dict`.  Compilation is a pure restructuring: scores
        from the compiled form are bit-identical to
        :meth:`decision_function_trees`.
        """
        if not self._trees:
            raise RuntimeError("model is not fitted")
        if self._compiled is None:
            self._compiled = CompiledEnsemble.from_trees(
                self._trees,
                initial_raw=self._initial_raw,
                learning_rate=self.learning_rate,
                n_features=int(self.n_features_in_ or 0),
            )
        return self._compiled

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive score before the logistic link."""
        X = self._check_fitted(X)
        if len(X) == 1:
            # Per-page scoring path: walking each tree with Python
            # scalars skips every round of numpy overhead.  tolist()
            # and scalar ops are exact float64, and the accumulation
            # order matches the per-tree loop, so the result is
            # bit-identical.
            row = X[0].tolist()
            raw = self._initial_raw
            for tree in self._trees:
                raw = raw + self.learning_rate * tree.predict_row(row)
            return np.array([raw], dtype=np.float64)
        return self.compiled().decision_function(X)

    def decision_function_trees(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree scoring loop (the pre-compiled path).

        Kept as the uncompiled baseline the differential harness checks
        :class:`~repro.ml.compiled.CompiledEnsemble` against; both
        accumulate ``learning_rate * tree_value`` in the same ensemble
        order, so they agree to the last bit.
        """
        X = self._check_fitted(X)
        raw = np.full(len(X), self._initial_raw)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Confidence of the positive (phishing) class, in ``[0, 1]``."""
        return _sigmoid(self.decision_function(X))

    def predict(
        self, X: np.ndarray, threshold: float = PAPER_THRESHOLD
    ) -> np.ndarray:
        """Binary predictions at the given discrimination threshold.

        The default is the paper's 0.7 (:data:`PAPER_THRESHOLD`), the
        same value :class:`~repro.core.detector.PhishingDetector` uses —
        not the conventional 0.5 — predicting legitimate for confidences
        in ``[0, 0.7)`` and phishing for ``[0.7, 1]``.  Pass
        ``threshold=0.5`` explicitly for the conventional cut.
        """
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def staged_predict_proba(self, X: np.ndarray) -> Iterator[np.ndarray]:
        """Yield the positive-class probability after each boosting stage."""
        X = self._check_fitted(X)
        raw = np.full(len(X), self._initial_raw)
        for tree in self._trees:
            raw = raw + self.learning_rate * tree.predict(X)
            yield _sigmoid(raw)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the fitted ensemble to a plain-JSON-able dict.

        The client-side deployment story of the paper needs trained
        models shipped to browsers; this is the wire format.
        """
        if not self._trees:
            raise RuntimeError("model is not fitted")
        return {
            "hyperparameters": {
                "n_estimators": self.n_estimators,
                "learning_rate": self.learning_rate,
                "max_depth": self.max_depth,
                "subsample": self.subsample,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "random_state": self.random_state,
                "tree_method": self.tree_method,
                "max_bins": self.max_bins,
            },
            "initial_raw": self._initial_raw,
            "n_features": self.n_features_in_,
            "trees": [
                {
                    "feature": tree.feature.tolist(),
                    "threshold": tree.threshold.tolist(),
                    "left": tree.left.tolist(),
                    "right": tree.right.tolist(),
                    "value": tree.value.tolist(),
                }
                for tree in self._trees
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GradientBoostingClassifier":
        """Rebuild a fitted ensemble from :meth:`to_dict` output."""
        try:
            model = cls(**payload["hyperparameters"])
            model._initial_raw = float(payload["initial_raw"])
            model.n_features_in_ = int(payload["n_features"])
            trees_payload = payload["trees"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed model payload: {exc}") from exc
        model._trees = []
        for tree_payload in trees_payload:
            tree = RegressionTree(max_depth=model.max_depth)
            tree.feature = np.asarray(tree_payload["feature"], dtype=np.int64)
            tree.threshold = np.asarray(
                tree_payload["threshold"], dtype=np.float64
            )
            tree.left = np.asarray(tree_payload["left"], dtype=np.int64)
            tree.right = np.asarray(tree_payload["right"], dtype=np.int64)
            tree.value = np.asarray(tree_payload["value"], dtype=np.float64)
            tree.n_nodes = len(tree.feature)
            model._trees.append(tree)
        return model

    def feature_importances(self) -> np.ndarray:
        """Split-frequency feature importances, normalised to sum to 1."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        counts = np.zeros(self.n_features_in_, dtype=np.float64)
        for tree in self._trees:
            internal = tree.feature[tree.feature >= 0]
            for feat in internal:
                counts[feat] += 1
        total = counts.sum()
        return counts / total if total else counts
