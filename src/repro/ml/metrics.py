"""Binary classification metrics used throughout the paper's Section VI.

The evaluation reports precision, recall, F1-score, false positive rate
and AUC per language (Table VI), per feature set (Table VII), ROC curves
(Figs. 4, 5), precision-recall curves (Fig. 3) and accuracy (Table X).
All functions take the phishing class as positive (label 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BinaryMetrics:
    """A row of the paper's accuracy tables."""

    tp: int
    fp: int
    tn: int
    fn: int
    precision: float
    recall: float
    f1: float
    fpr: float
    accuracy: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary view, handy for table rendering."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "fpr": self.fpr,
            "accuracy": self.accuracy,
        }


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, tn, fn)`` with phishing (1) as the positive class."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return tp, fp, tn, fn


def binary_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> BinaryMetrics:
    """Compute the full metric row for hard predictions.

    Degenerate denominators (no predicted positives, no actual positives,
    no actual negatives) yield 0.0 for the affected metric.
    """
    tp, fp, tn, fn = confusion_counts(y_true, y_pred)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    fpr = fp / (fp + tn) if fp + tn else 0.0
    total = tp + fp + tn + fn
    accuracy = (tp + tn) / total if total else 0.0
    return BinaryMetrics(
        tp=tp, fp=fp, tn=tn, fn=fn,
        precision=precision, recall=recall, f1=f1, fpr=fpr, accuracy=accuracy,
    )


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve: ``(fpr, tpr, thresholds)`` ordered by decreasing threshold.

    Matches the usual construction: one point per distinct score, plus the
    (0, 0) origin with an infinite threshold.
    """
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_score.shape}")

    order = np.argsort(-y_score, kind="stable")
    sorted_true = y_true[order]
    sorted_score = y_score[order]

    # Indices where the score changes — curve vertices.
    distinct = np.flatnonzero(np.diff(sorted_score)) if len(sorted_score) else []
    vertex_idx = np.r_[distinct, len(sorted_true) - 1] if len(sorted_true) else []

    tps = np.cumsum(sorted_true)[vertex_idx] if len(sorted_true) else np.array([])
    fps = (1 + np.asarray(vertex_idx)) - tps if len(sorted_true) else np.array([])

    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    tpr = tps / n_pos if n_pos else np.zeros_like(tps, dtype=float)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps, dtype=float)

    thresholds = sorted_score[vertex_idx] if len(sorted_true) else np.array([])
    fpr = np.r_[0.0, fpr]
    tpr = np.r_[0.0, tpr]
    thresholds = np.r_[np.inf, thresholds]
    return fpr, tpr, thresholds


def auc(x: np.ndarray, y: np.ndarray) -> float:
    """Area under a curve by the trapezoidal rule (x need not be sorted)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) < 2:
        return 0.0
    order = np.argsort(x, kind="stable")
    return float(np.trapezoid(y[order], x[order]))


def roc_auc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve."""
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return auc(fpr, tpr)


def precision_recall_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall curve: ``(precision, recall, thresholds)``.

    One point per distinct score threshold, ordered by decreasing
    threshold (recall increases along the arrays).
    """
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_score.shape}")

    order = np.argsort(-y_score, kind="stable")
    sorted_true = y_true[order]
    sorted_score = y_score[order]

    distinct = np.flatnonzero(np.diff(sorted_score)) if len(sorted_score) else []
    vertex_idx = np.r_[distinct, len(sorted_true) - 1] if len(sorted_true) else []

    tps = np.cumsum(sorted_true)[vertex_idx] if len(sorted_true) else np.array([])
    predicted_pos = 1 + np.asarray(vertex_idx) if len(sorted_true) else np.array([])

    n_pos = int(y_true.sum())
    precision = np.divide(
        tps, predicted_pos, out=np.zeros_like(tps, dtype=float),
        where=np.asarray(predicted_pos) > 0,
    )
    recall = tps / n_pos if n_pos else np.zeros_like(tps, dtype=float)
    thresholds = sorted_score[vertex_idx] if len(sorted_true) else np.array([])
    return precision, recall, thresholds


def recall_at_precision(
    y_true: np.ndarray, y_score: np.ndarray, min_precision: float
) -> float:
    """Best recall achievable while keeping precision >= ``min_precision``.

    The paper's usability criterion (Section VI-C1): a model is usable
    when it keeps significant recall at precision 0.9-0.95.
    """
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    feasible = recall[precision >= min_precision]
    return float(feasible.max()) if len(feasible) else 0.0
