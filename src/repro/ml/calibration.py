"""Confidence calibration and threshold selection.

The paper fixes the discrimination threshold at 0.7 to favour the
legitimate class.  A deployment tunes that choice against a target
false-positive budget on validation data; this module provides the
tooling: reliability curves, expected calibration error and
budget-driven threshold selection.
"""

from __future__ import annotations

import numpy as np


def reliability_curve(
    y_true: np.ndarray, y_score: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bin scores and compare predicted vs observed positive rates.

    Returns ``(bin_centers, observed_rate, counts)``; empty bins carry
    ``nan`` observed rates and zero counts.
    """
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    y_true = np.asarray(y_true).astype(float)
    y_score = np.asarray(y_score, dtype=float)
    if y_true.shape != y_score.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_score.shape}")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2
    observed = np.full(n_bins, np.nan)
    counts = np.zeros(n_bins, dtype=int)
    indices = np.clip(np.digitize(y_score, edges[1:-1]), 0, n_bins - 1)
    for bin_index in range(n_bins):
        mask = indices == bin_index
        counts[bin_index] = int(mask.sum())
        if counts[bin_index]:
            observed[bin_index] = float(y_true[mask].mean())
    return centers, observed, counts


def expected_calibration_error(
    y_true: np.ndarray, y_score: np.ndarray, n_bins: int = 10
) -> float:
    """Count-weighted mean |predicted − observed| across score bins."""
    centers, observed, counts = reliability_curve(y_true, y_score, n_bins)
    total = counts.sum()
    if not total:
        return 0.0
    error = 0.0
    for center, rate, count in zip(centers, observed, counts):
        if count:
            error += count / total * abs(center - rate)
    return float(error)


def threshold_for_fpr(
    y_true: np.ndarray, y_score: np.ndarray, max_fpr: float
) -> float:
    """Smallest threshold whose validation FPR is <= ``max_fpr``.

    Smaller thresholds mean more recall, so the returned value is the
    most permissive one still inside the false-positive budget.  Returns
    1.0 (block nothing... i.e. flag only certainty) when even the
    strictest cut cannot meet the budget — with no negatives present the
    budget is trivially met at threshold 0.
    """
    if not 0 <= max_fpr <= 1:
        raise ValueError(f"max_fpr must be in [0, 1], got {max_fpr}")
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=float)
    negatives = np.sort(y_score[~y_true])
    if not len(negatives):
        return 0.0
    # FPR at threshold t = share of negatives with score >= t.  Allow at
    # most floor(max_fpr * n) negatives above the threshold.
    allowed = int(np.floor(max_fpr * len(negatives)))
    if allowed >= len(negatives):
        return 0.0
    # Threshold just above the (allowed+1)-th largest negative score.
    cutoff = negatives[len(negatives) - allowed - 1]
    threshold = float(np.nextafter(cutoff, 2.0))
    return min(1.0, threshold)


def threshold_for_miss_rate(
    y_true: np.ndarray, y_score: np.ndarray, max_fnr: float
) -> float:
    """Largest threshold below which at most ``max_fnr`` positives fall.

    The mirror image of :func:`threshold_for_fpr`: scores *at or
    under* the returned value may be called confidently negative while
    missing at most a ``max_fnr`` share of validation positives.
    Larger thresholds clear more negatives confidently, so the
    returned value is the most permissive one still inside the
    miss-rate budget.  Returns 1.0 when there are no positives (the
    budget is trivially met everywhere).
    """
    if not 0 <= max_fnr <= 1:
        raise ValueError(f"max_fnr must be in [0, 1], got {max_fnr}")
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=float)
    positives = np.sort(y_score[y_true])
    if not len(positives):
        return 1.0
    # FNR at threshold t = share of positives with score <= t.  Allow
    # at most floor(max_fnr * n) positives at or under the threshold.
    allowed = int(np.floor(max_fnr * len(positives)))
    if allowed >= len(positives):
        return 1.0
    # Threshold just below the (allowed+1)-th smallest positive score.
    cutoff = positives[allowed]
    threshold = float(np.nextafter(cutoff, -2.0))
    return max(0.0, threshold)


def two_sided_thresholds(
    y_true: np.ndarray,
    y_score: np.ndarray,
    max_fpr: float = 0.0,
    max_fnr: float = 0.0,
) -> tuple[float, float]:
    """Calibrate a confident-negative / confident-positive band.

    Returns ``(legit_threshold, phish_threshold)`` for a triage
    ladder: scores ``>= phish_threshold`` are confidently positive
    (validation FPR within ``max_fpr``), scores ``<= legit_threshold``
    confidently negative (validation FNR within ``max_fnr``), and the
    band between the two *escalates* to a stronger model.  The
    thresholds are clamped to ``legit_threshold < phish_threshold`` so
    the two confident regions never overlap; the escalation band may
    be empty when the classes separate cleanly.
    """
    phish = threshold_for_fpr(y_true, y_score, max_fpr)
    legit = threshold_for_miss_rate(y_true, y_score, max_fnr)
    if legit >= phish:
        legit = max(0.0, float(np.nextafter(phish, -2.0)))
    return legit, phish


def threshold_for_precision(
    y_true: np.ndarray, y_score: np.ndarray, min_precision: float
) -> float | None:
    """Smallest threshold whose validation precision >= ``min_precision``.

    Returns ``None`` when no threshold achieves the requested precision.
    """
    if not 0 < min_precision <= 1:
        raise ValueError(
            f"min_precision must be in (0, 1], got {min_precision}"
        )
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=float)
    order = np.argsort(-y_score, kind="stable")
    sorted_true = y_true[order]
    sorted_score = y_score[order]
    tps = np.cumsum(sorted_true)
    precision = tps / np.arange(1, len(sorted_true) + 1)
    feasible = np.flatnonzero(precision >= min_precision)
    if not len(feasible):
        return None
    best = feasible[-1]  # deepest cut still meeting the precision bar
    return float(sorted_score[best])
