"""Fixed-bin feature quantisation for histogram split finding.

LightGBM-style training replaces the exact evaluation of every distinct
threshold with a pass over at most ``max_bins`` quantile bins per
feature: the bin edges are computed **once per ensemble fit** from the
training matrix, every sample is mapped to a small integer code, and
split search at a node reduces to a bincount over codes followed by a
prefix scan — ``O(samples + bins)`` per feature instead of
``O(samples)`` distinct thresholds.

This mode is **approximate**: candidate thresholds are restricted to the
bin edges, so trees (and therefore predictions) can differ from the
exact greedy path.  It exists for large corpora where the exact paths
become the bottleneck; the exact and presorted paths remain the
reference.  Thresholds stored in the fitted trees are raw feature
values (the bin edges), so prediction needs no binning step.

The code contract that keeps fitting and prediction consistent: codes
are assigned with ``np.searchsorted(cuts, x, side="left")``, which makes
``code <= b`` equivalent to ``x <= cuts[b]`` — exactly the ``<=``
predicate :meth:`repro.ml.tree.RegressionTree.apply` evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BinnedMatrix:
    """A quantised feature matrix: integer codes plus per-feature cuts.

    Attributes
    ----------
    codes:
        ``(n_samples, n_features)`` int32 bin codes; feature ``f`` takes
        values in ``[0, len(cuts[f])]``.
    cuts:
        Per-feature ascending threshold values.  A split "after bin b"
        corresponds to the predicate ``x <= cuts[f][b]``.
    width:
        Row width used when histogramming all features into one flat
        bincount: ``max(len(cuts[f])) + 1`` over all features.
    """

    codes: np.ndarray
    cuts: list[np.ndarray]
    width: int

    def take_rows(self, rows: np.ndarray) -> "BinnedMatrix":
        """The binned view of a row subset (shared cuts, sliced codes).

        Used by stochastic boosting: per-stage subsamples reuse the
        ensemble-level binning instead of re-quantising.
        """
        return BinnedMatrix(self.codes[rows], self.cuts, self.width)


def bin_matrix(X: np.ndarray, max_bins: int = 64) -> BinnedMatrix:
    """Quantise ``X`` into at most ``max_bins`` quantile bins per feature.

    Cut points are the interior quantiles of each column, deduplicated;
    columns with fewer distinct values than bins keep one bin per value
    (the histogram split is then exact for that column).  Cuts equal to
    the column maximum are dropped — a split there would leave an empty
    right child and can never be chosen.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if max_bins < 2:
        raise ValueError(f"max_bins must be >= 2, got {max_bins}")
    n, n_features = X.shape
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    cuts: list[np.ndarray] = []
    codes = np.empty((n, n_features), dtype=np.int32)
    for f in range(n_features):
        column = X[:, f]
        distinct = np.unique(column)
        if len(distinct) <= max_bins:
            # Few distinct values: one bin per value boundary (exact).
            feature_cuts = distinct[:-1]
        else:
            feature_cuts = np.unique(np.quantile(column, quantiles))
            feature_cuts = feature_cuts[feature_cuts < distinct[-1]]
        cuts.append(feature_cuts)
        codes[:, f] = np.searchsorted(feature_cuts, column, side="left")
    width = max((len(c) for c in cuts), default=0) + 1
    return BinnedMatrix(codes=codes, cuts=cuts, width=width)
