"""repro — reproduction of "Know Your Phish" (Marchal et al., ICDCS 2016).

A phishing-detection and target-identification system built on features
that model phisher limitations and term-usage consistency, together with
every substrate the paper's evaluation needs: URL/public-suffix parsing,
HTML extraction, a gradient-boosting classifier, a synthetic web with a
browser, search engine and OCR, and multilingual corpus generators.

Quickstart::

    from repro import CorpusConfig, build_world, PhishingDetector
    from repro.core import FeatureExtractor

    world = build_world(CorpusConfig())
    extractor = FeatureExtractor(alexa=world.alexa)
    detector = PhishingDetector(extractor)
    train = world.dataset("legTrain") + world.dataset("phishTrain")
    detector.fit_snapshots(
        [page.snapshot for page in train], train.labels()
    )
"""

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish, PageVerdict
from repro.core.target import TargetIdentification, TargetIdentifier
from repro.corpus.datasets import CorpusConfig, Dataset, World, build_world
from repro.web.page import PageSnapshot, Screenshot

__version__ = "1.0.0"

__all__ = [
    "CorpusConfig",
    "Dataset",
    "FeatureExtractor",
    "KnowYourPhish",
    "PageSnapshot",
    "PageVerdict",
    "PhishingDetector",
    "Screenshot",
    "TargetIdentification",
    "TargetIdentifier",
    "World",
    "build_world",
    "__version__",
]
