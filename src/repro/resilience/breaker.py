"""Circuit breaker guarding flaky dependencies (Nygard's pattern).

When a dependency — here, the search engine backing target
identification — starts failing consistently, hammering it with more
requests only adds latency and load.  The breaker watches consecutive
failures; after ``failure_threshold`` of them it *opens* and rejects
calls immediately with :class:`CircuitOpenError` (which the pipeline
converts into a degraded, detector-only verdict).  After
``recovery_time`` it becomes *half-open* and lets a single probe
through: success closes the circuit, failure re-opens it for another
cooldown.

The breaker is thread-safe: state transitions happen under a lock, and
the half-open probe is exclusive — while one caller's probe is in
flight, concurrent callers are rejected rather than stampeding the
recovering dependency.
"""

from __future__ import annotations

import threading

from repro.resilience.clock import Clock, SystemClock
from repro.resilience.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of breaker states for the metrics layer.
STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """A consecutive-failure circuit breaker with a recovery probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    recovery_time:
        Seconds the breaker stays open before allowing a probe call.
    failure_types:
        Exception types counted as failures; others propagate without
        touching the failure count.
    clock:
        Time source for the cooldown (injectable for tests).
    name:
        Label used in error messages (e.g. ``"search"``).
    metrics:
        Optional metrics registry (the
        :class:`repro.obs.metrics.MetricsRegistry` API, duck-typed):
        every state change emits a
        ``breaker_transitions_total{name=,to=}`` counter increment and
        updates the ``breaker_state{name=}`` gauge.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        failure_types: tuple[type[BaseException], ...] = (Exception,),
        clock: Clock | None = None,
        name: str = "dependency",
        metrics=None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.failure_types = failure_types
        self.clock = clock or SystemClock()
        self.name = name
        self.metrics = metrics
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: lifetime counters, exposed for experiment reporting
        self.stats = {"calls": 0, "failures": 0, "rejected": 0, "trips": 0}
        #: per-edge state-transition counts, e.g. ``"closed->open": 2``
        self.transitions: dict[str, int] = {}

    def __getstate__(self) -> dict:
        """Pickle support: locks don't travel to process workers."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    @property
    def opened_count(self) -> int:
        """Times the breaker has *entered* the open state.

        Counts every ``-> open`` transition — trips from closed as well
        as re-opens from a failed half-open probe — as explicit events,
        so callers no longer need to infer opens from raised
        :class:`~repro.resilience.errors.CircuitOpenError`\\ s.
        """
        with self._lock:
            return sum(
                count
                for edge, count in self.transitions.items()
                if edge.endswith(f"->{OPEN}")
            )

    def _set_state(self, new_state: str) -> None:
        """Move to ``new_state``, recording the transition as an event."""
        with self._lock:
            old = self._state
            if old == new_state:
                return
            self._state = new_state
            edge = f"{old}->{new_state}"
            self.transitions[edge] = self.transitions.get(edge, 0) + 1
        if self.metrics is not None:
            self.metrics.inc(
                "breaker_transitions_total", name=self.name, to=new_state
            )
            self.metrics.set_gauge(
                "breaker_state", STATE_GAUGE[new_state], name=self.name
            )

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half-open``.

        Reading the state performs the open → half-open transition when
        the cooldown has elapsed.
        """
        with self._lock:
            if self._state == OPEN and (
                self.clock.now() - self._opened_at >= self.recovery_time
            ):
                self._set_state(HALF_OPEN)
            return self._state

    def call(self, fn, *args, **kwargs):
        """Invoke ``fn(*args, **kwargs)`` through the breaker.

        Raises :class:`CircuitOpenError` without calling ``fn`` while
        the circuit is open; otherwise records the call's outcome.
        In the half-open state exactly one caller at a time may run
        the probe — concurrent callers are rejected until the probe
        resolves, so a recovering dependency sees one request, not a
        thundering herd.
        """
        with self._lock:
            state = self.state
            if state == OPEN:
                self.stats["rejected"] += 1
                raise CircuitOpenError(
                    f"{self.name} circuit open: failing fast after "
                    f"{self._consecutive_failures} consecutive failures"
                )
            if state == HALF_OPEN:
                if self._probe_in_flight:
                    self.stats["rejected"] += 1
                    raise CircuitOpenError(
                        f"{self.name} circuit half-open: recovery probe "
                        "already in flight"
                    )
                self._probe_in_flight = True
            self.stats["calls"] += 1
        try:
            result = fn(*args, **kwargs)
        except self.failure_types:
            self.record_failure()
            raise
        except BaseException:
            # Not counted as a dependency failure, but the probe slot
            # must be released or the breaker would reject forever.
            with self._lock:
                self._probe_in_flight = False
            raise
        self.record_success()
        return result

    def record_success(self) -> None:
        """Note a successful call: closes the circuit, resets failures."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        """Note a failed call; trips the breaker at the threshold.

        A failure during the half-open probe re-opens immediately —
        the dependency has not recovered yet.
        """
        with self._lock:
            self.stats["failures"] += 1
            self._consecutive_failures += 1
            self._probe_in_flight = False
            probing = self._state == HALF_OPEN
            if (
                probing
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != OPEN:
                    self.stats["trips"] += 1
                self._set_state(OPEN)
                self._opened_at = self.clock.now()
