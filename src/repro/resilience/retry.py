"""Retry policy with exponential backoff, jitter and per-page deadlines.

A :class:`RetryPolicy` re-runs an operation when it raises a *transient*
error, sleeping an exponentially growing, jittered delay between
attempts.  A :class:`Deadline` caps the total time one page may consume
(scraping a single URL must never stall a batch run); the policy checks
the deadline before every attempt and refuses to sleep past it.

Both take an injectable :class:`~repro.resilience.clock.Clock` and the
jitter stream is seeded, so tests and the fault-injection benchmarks run
instantly and reproducibly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.resilience.clock import Clock, SystemClock
from repro.resilience.errors import (
    DeadlineExceeded,
    TransientFetchError,
)


class Deadline:
    """A time budget measured against an injectable clock.

    Parameters
    ----------
    budget:
        Seconds allowed from construction; ``None`` means unlimited.
    clock:
        Time source (default: the system clock).
    """

    def __init__(self, budget: float | None, clock: Clock | None = None):
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.clock = clock or SystemClock()
        self.budget = budget
        self.started = self.clock.now()

    def elapsed(self) -> float:
        """Seconds consumed since the deadline started."""
        return self.clock.now() - self.started

    def remaining(self) -> float | None:
        """Seconds left (``None`` when unlimited; never below zero)."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.elapsed())

    def expired(self) -> bool:
        """True once the budget is exhausted."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, activity: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is exhausted."""
        if self.expired():
            raise DeadlineExceeded(
                f"{activity} exceeded its {self.budget:.3f}s budget"
            )

    def allows(self, seconds: float) -> bool:
        """True when at least ``seconds`` of budget remain."""
        remaining = self.remaining()
        return remaining is None or remaining >= seconds


@dataclass
class RetryOutcome:
    """What one :meth:`RetryPolicy.call` execution observed."""

    result: object
    attempts: int
    total_delay: float


class RetryPolicy:
    """Exponential backoff with full jitter over an injectable clock.

    Parameters
    ----------
    max_attempts:
        Total tries, first attempt included (>= 1).
    base_delay:
        Delay before the second attempt, in seconds.
    multiplier:
        Backoff growth factor per further attempt.
    max_delay:
        Upper bound on any single delay.
    jitter:
        Fraction of each delay randomised away (0 = deterministic
        delays, 0.5 = delays drawn from [0.5d, d]).
    retry_on:
        Exception types that trigger a retry; anything else propagates.
    clock:
        Time source whose ``sleep`` implements the backoff waits.
    seed:
        Seed for the jitter (deterministic tests/benchmarks).

    The jittered delay is a **pure function of ``(seed, attempt)``** —
    there is no shared RNG stream to advance — so ``delay(n)`` returns
    the same value however many retries ran before it, and identically
    configured policies produce identical backoff schedules on the
    serial, thread and process pool backends (a policy shipped to a
    process worker by pickling backs off exactly like the original).
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        retry_on: tuple[type[BaseException], ...] = (TransientFetchError,),
        clock: Clock | None = None,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0 <= jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retry_on = retry_on
        self.clock = clock or SystemClock()
        self.seed = seed

    def delay(self, attempt: int) -> float:
        """Backoff delay after the ``attempt``-th failure (1-based).

        Deterministic per ``(seed, attempt)``: the jitter draw comes
        from a throwaway ``random.Random`` keyed on both, never from a
        shared stream, so repeated calls — and calls from different
        worker threads or processes — agree exactly.
        """
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter == 0:
            return raw
        draw = random.Random(self.seed * 0x9E3779B1 ^ attempt).random()
        return raw * (1 - self.jitter * draw)

    def call(self, fn, deadline: Deadline | None = None) -> RetryOutcome:
        """Run ``fn()`` under this policy, returning a :class:`RetryOutcome`.

        Retries on the configured transient errors until the attempts
        or the ``deadline`` budget run out.  When attempts run out the
        last transient error is re-raised unchanged; when the deadline
        cannot accommodate the next backoff sleep,
        :class:`DeadlineExceeded` is raised with the transient error as
        its cause.
        """
        total_delay = 0.0
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.check("retried operation")
            try:
                result = fn()
            except self.retry_on as error:
                if attempt >= self.max_attempts:
                    raise
                pause = self.delay(attempt)
                if deadline is not None and not deadline.allows(pause):
                    raise DeadlineExceeded(
                        f"no budget left to back off {pause:.3f}s before "
                        f"attempt {attempt + 1}"
                    ) from error
                self.clock.sleep(pause)
                total_delay += pause
                continue
            return RetryOutcome(
                result=result, attempts=attempt, total_delay=total_delay
            )
        raise AssertionError("unreachable")  # pragma: no cover
