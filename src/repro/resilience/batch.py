"""Batch analysis with quarantine: one sick page never aborts a run.

``analyze_many`` drives the full pipeline over a list of starting URLs.
Pages that cannot be loaded — permanently dead hosts, retry budgets
exhausted, deadlines blown — are recorded as structured
:class:`QuarantinedPage` entries instead of raising out of the loop, so
a crawl over a million URLs degrades into a report, not a traceback.
Successfully analyzed pages keep their verdicts alongside the effort
(attempts, degradations) the load cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, AnyMetrics, MetricsRegistry
from repro.obs.trace import NULL_TRACER, AnyTracer, Tracer
from repro.parallel.cache import CacheCountsProbe
from repro.resilience.browser import LoadResult
from repro.resilience.errors import (
    DeadlineExceeded,
    FetchError,
    PermanentFetchError,
    TransientFetchError,
)
from repro.web.browser import PageNotFound, RedirectLoopError


@dataclass
class QuarantinedPage:
    """A URL the run gave up on, with the structured reason."""

    url: str
    error_kind: str            # exception class name
    message: str
    permanent: bool            # False for exhausted-retries / deadline
    attempts: int = 0

    @classmethod
    def from_error(cls, url: str, error: Exception) -> "QuarantinedPage":
        """Classify an exception into a quarantine record."""
        permanent = isinstance(
            error, (PageNotFound, RedirectLoopError, PermanentFetchError)
        ) and not isinstance(error, TransientFetchError)
        attempts = getattr(error, "attempts", 0)
        return cls(
            url=url,
            error_kind=type(error).__name__,
            message=str(error),
            permanent=permanent,
            attempts=attempts,
        )


@dataclass
class AnalyzedPage:
    """One successfully analyzed page: verdict plus load effort."""

    url: str
    verdict: object            # a core.pipeline.PageVerdict
    attempts: int = 1
    degradations: list[str] = field(default_factory=list)


@dataclass
class BatchReport:
    """Outcome of one ``analyze_many`` run."""

    analyzed: list[AnalyzedPage] = field(default_factory=list)
    quarantined: list[QuarantinedPage] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Pages attempted (analyzed + quarantined)."""
        return len(self.analyzed) + len(self.quarantined)

    @property
    def completion_rate(self) -> float:
        """Share of attempted pages that produced a verdict."""
        return len(self.analyzed) / self.total if self.total else 0.0

    @property
    def degraded_count(self) -> int:
        """Analyzed pages whose verdict carries a degradation tag."""
        return sum(
            1 for page in self.analyzed
            if getattr(page.verdict, "degraded", False)
        )

    @property
    def retried_count(self) -> int:
        """Analyzed pages that needed more than one load attempt."""
        return sum(1 for page in self.analyzed if page.attempts > 1)

    def summary(self) -> dict[str, float]:
        """Flat numeric summary for reports and experiment tables."""
        return {
            "total": self.total,
            "analyzed": len(self.analyzed),
            "quarantined": len(self.quarantined),
            "quarantined_permanent": sum(
                1 for page in self.quarantined if page.permanent
            ),
            "completion_rate": self.completion_rate,
            "degraded": self.degraded_count,
            "retried": self.retried_count,
        }


class _TracedAnalyze:
    """Per-item observed analysis: one fresh tracer/registry per page.

    Mapped over loaded pages (serially or through a
    :class:`~repro.parallel.WorkerPool`).  Every call records into its
    *own* :class:`~repro.obs.trace.Tracer` and
    :class:`~repro.obs.metrics.MetricsRegistry` and ships the finished
    span records + metric snapshot back with the verdict; the caller
    splices them into the batch-level instruments **in input order**.
    That isolation is what makes span dumps byte-identical across
    serial, thread and process backends — worker scheduling can never
    interleave two pages' spans.

    The clock is shared (pickled along, for process workers) so
    manual-clock tests stay deterministic there too.
    """

    def __init__(self, pipeline, clock) -> None:
        self.pipeline = pipeline
        self.clock = clock

    def __call__(self, loaded) -> tuple[object, list, dict]:
        tracer = Tracer(clock=self.clock)
        metrics = MetricsRegistry()
        verdict = self.pipeline.analyze(
            loaded, tracer=tracer, metrics=metrics
        )
        return verdict, tracer.export_records(), metrics.as_dict()


def analyze_many(
    pipeline,
    browser,
    urls,
    pool=None,
    tracer: AnyTracer = NULL_TRACER,
    metrics: AnyMetrics = NULL_METRICS,
) -> BatchReport:
    """Analyze every URL, quarantining failures instead of raising.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.core.pipeline.KnowYourPhish` (anything with an
        ``analyze`` accepting a snapshot or :class:`LoadResult`).
    browser:
        A :class:`ResilientBrowser` (preferred) or plain
        :class:`~repro.web.browser.Browser`.
    urls:
        Iterable of starting URLs.
    pool:
        Optional :class:`~repro.parallel.WorkerPool` fanning the
        *analysis* stage out over workers.  Page **loads always run
        serially in input order**: browsers, retry policies and
        fault-injecting webs are stateful (RNG streams, degradation
        notes, circuit breakers), so serial loading keeps every fault,
        retry and quarantine decision identical to the serial run.
        Analysis is a pure function of the loaded page, so the report —
        verdicts, ordering, quarantine records — is bit-identical to
        ``pool=None`` for any backend and worker count.
    tracer, metrics:
        Batch-level instruments.  Loads are observed live (the phase-1
        ``batch.load`` span); each page's analysis records into a fresh
        per-item tracer/registry whose output is spliced back in input
        order, so dumps are deterministic across backends and runs.
        With both left at their null defaults the function takes the
        exact pre-observability fast path.
    """
    report = BatchReport()
    observed = tracer.enabled or metrics.enabled
    # Phase 1 (serial): load every page, quarantining failures.
    loaded_pages: list[tuple[str, LoadResult]] = []
    outcomes: list[tuple[str, object]] = []  # (kind, record/index)
    with tracer.span("batch.load"):
        for url in urls:
            try:
                loaded = browser.load(url)
            except (
                PageNotFound, RedirectLoopError, FetchError, DeadlineExceeded
            ) as error:
                record = QuarantinedPage.from_error(url, error)
                metrics.inc("batch_quarantined_total", error=record.error_kind)
                outcomes.append(("quarantined", record))
                continue
            if not isinstance(loaded, LoadResult):
                loaded = LoadResult(snapshot=loaded)
            outcomes.append(("analyzed", len(loaded_pages)))
            loaded_pages.append((url, loaded))

    # Phase 2 (parallel): analyze the pages that loaded.
    loads = [loaded for _url, loaded in loaded_pages]
    if not observed:
        if pool is None:
            verdicts = [pipeline.analyze(loaded) for loaded in loads]
        else:
            verdicts = pool.map(pipeline.analyze, loads)
    else:
        worker = _TracedAnalyze(pipeline, tracer.clock)
        if pool is None:
            observed_results = [worker(loaded) for loaded in loads]
        else:
            # Cache counters accumulated inside process workers would
            # otherwise be lost with the pipeline copy; the probe ships
            # per-item deltas back for merging.
            cache = getattr(
                getattr(getattr(pipeline, "detector", None), "extractor", None),
                "cache",
                None,
            )
            probes = [CacheCountsProbe(cache)] if cache is not None else []
            observed_results = pool.map_observed(worker, loads, probes=probes)
        verdicts = []
        for verdict, records, snapshot in observed_results:
            verdicts.append(verdict)
            tracer.adopt(records)
            metrics.merge(snapshot)

    # Phase 3: assemble the report in input order, as a serial run would.
    for kind, payload in outcomes:
        if kind == "quarantined":
            report.quarantined.append(payload)
            continue
        index = payload
        url, loaded = loaded_pages[index]
        report.analyzed.append(
            AnalyzedPage(
                url=url,
                verdict=verdicts[index],
                attempts=loaded.attempts,
                degradations=list(loaded.degradations),
            )
        )
    return report
