"""Batch analysis with quarantine: one sick page never aborts a run.

``analyze_many`` drives the full pipeline over a list of starting URLs.
Pages that cannot be loaded — permanently dead hosts, retry budgets
exhausted, deadlines blown — are recorded as structured
:class:`QuarantinedPage` entries instead of raising out of the loop, so
a crawl over a million URLs degrades into a report, not a traceback.
Successfully analyzed pages keep their verdicts alongside the effort
(attempts, degradations) the load cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, AnyMetrics, MetricsRegistry
from repro.obs.trace import NULL_TRACER, AnyTracer, Tracer
from repro.parallel.cache import CacheCountsProbe
from repro.resilience.browser import LoadResult
from repro.resilience.clock import SystemClock
from repro.resilience.errors import (
    DeadlineExceeded,
    FetchError,
    PermanentFetchError,
    TransientFetchError,
)
from repro.resilience.retry import Deadline
from repro.web.browser import PageNotFound, RedirectLoopError


@dataclass
class QuarantinedPage:
    """A URL the run gave up on, with the structured reason."""

    url: str
    error_kind: str            # exception class name
    message: str
    permanent: bool            # False for exhausted-retries / deadline
    attempts: int = 0

    @classmethod
    def from_error(cls, url: str, error: Exception) -> "QuarantinedPage":
        """Classify an exception into a quarantine record."""
        permanent = isinstance(
            error, (PageNotFound, RedirectLoopError, PermanentFetchError)
        ) and not isinstance(error, TransientFetchError)
        attempts = getattr(error, "attempts", 0)
        return cls(
            url=url,
            error_kind=type(error).__name__,
            message=str(error),
            permanent=permanent,
            attempts=attempts,
        )


@dataclass
class AnalyzedPage:
    """One successfully analyzed page: verdict plus load effort."""

    url: str
    verdict: object            # a core.pipeline.PageVerdict
    attempts: int = 1
    degradations: list[str] = field(default_factory=list)


@dataclass
class BatchReport:
    """Outcome of one ``analyze_many`` run."""

    analyzed: list[AnalyzedPage] = field(default_factory=list)
    quarantined: list[QuarantinedPage] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Pages attempted (analyzed + quarantined)."""
        return len(self.analyzed) + len(self.quarantined)

    @property
    def completion_rate(self) -> float:
        """Share of attempted pages that produced a verdict."""
        return len(self.analyzed) / self.total if self.total else 0.0

    @property
    def degraded_count(self) -> int:
        """Analyzed pages whose verdict carries a degradation tag."""
        return sum(
            1 for page in self.analyzed
            if getattr(page.verdict, "degraded", False)
        )

    @property
    def retried_count(self) -> int:
        """Analyzed pages that needed more than one load attempt."""
        return sum(1 for page in self.analyzed if page.attempts > 1)

    def error_kinds(self) -> dict[str, int]:
        """Histogram of quarantine causes by exception class name.

        Distinguishes navigation failures (``PageNotFound``) from
        outage signatures (``RetriesExhausted``, ``DeadlineExceeded``)
        in reports, which aggregate counts alone cannot.  Keys are
        sorted for deterministic report output.
        """
        counts: dict[str, int] = {}
        for page in self.quarantined:
            counts[page.error_kind] = counts.get(page.error_kind, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict[str, object]:
        """Flat summary for reports and experiment tables."""
        return {
            "total": self.total,
            "analyzed": len(self.analyzed),
            "quarantined": len(self.quarantined),
            "quarantined_permanent": sum(
                1 for page in self.quarantined if page.permanent
            ),
            "completion_rate": self.completion_rate,
            "degraded": self.degraded_count,
            "retried": self.retried_count,
            "error_kinds": self.error_kinds(),
        }


class _TracedAnalyze:
    """Per-item observed analysis: one fresh tracer/registry per page.

    Mapped over loaded pages (serially or through a
    :class:`~repro.parallel.WorkerPool`).  Every call records into its
    *own* :class:`~repro.obs.trace.Tracer` and
    :class:`~repro.obs.metrics.MetricsRegistry` and ships the finished
    span records + metric snapshot back with the verdict; the caller
    splices them into the batch-level instruments **in input order**.
    That isolation is what makes span dumps byte-identical across
    serial, thread and process backends — worker scheduling can never
    interleave two pages' spans.

    The clock is shared (pickled along, for process workers) so
    manual-clock tests stay deterministic there too.

    With ``budgeted=True`` each item is a ``(loaded, remaining)`` pair
    and the analysis runs under a fresh :class:`Deadline` holding the
    budget the page load left over.
    """

    def __init__(self, pipeline, clock, budgeted: bool = False) -> None:
        self.pipeline = pipeline
        self.clock = clock
        self.budgeted = budgeted

    def __call__(self, item) -> tuple[object, list, dict]:
        tracer = Tracer(clock=self.clock)
        metrics = MetricsRegistry()
        if self.budgeted:
            loaded, remaining = item
            deadline = (
                Deadline(remaining, clock=self.clock)
                if remaining is not None
                else None
            )
            verdict = self.pipeline.analyze(
                loaded, tracer=tracer, metrics=metrics, deadline=deadline
            )
        else:
            verdict = self.pipeline.analyze(
                item, tracer=tracer, metrics=metrics
            )
        return verdict, tracer.export_records(), metrics.as_dict()


class _TracedChunk:
    """Chunk adapter for :class:`_TracedAnalyze`.

    Maps the per-item traced worker over a contiguous chunk so observed
    runs can use :meth:`~repro.parallel.WorkerPool.map_observed_chunks`
    — one scheduling round-trip and one probe reconciliation per chunk
    instead of per page — while keeping the per-page tracer/registry
    isolation that makes span dumps backend-independent.
    """

    def __init__(self, worker: _TracedAnalyze) -> None:
        self.worker = worker

    def __call__(self, chunk: list) -> list[tuple[object, list, dict]]:
        return [self.worker(item) for item in chunk]


class _BudgetedAnalyze:
    """Picklable analysis wrapper carrying each page's leftover budget.

    Mapped over ``(loaded, remaining)`` pairs in the fast
    (unobserved) path when ``analyze_many`` runs with a page budget:
    the deadline is reconstructed at analysis start from the seconds
    the load left over, so queue position in the load phase never
    charges against a later page's analysis.
    """

    def __init__(self, pipeline, clock) -> None:
        self.pipeline = pipeline
        self.clock = clock

    def __call__(self, item):
        loaded, remaining = item
        deadline = (
            Deadline(remaining, clock=self.clock)
            if remaining is not None
            else None
        )
        return self.pipeline.analyze(loaded, deadline=deadline)


def analyze_many(
    pipeline,
    browser,
    urls,
    pool=None,
    tracer: AnyTracer = NULL_TRACER,
    metrics: AnyMetrics = NULL_METRICS,
    page_budget: float | None = None,
) -> BatchReport:
    """Analyze every URL, quarantining failures instead of raising.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.core.pipeline.KnowYourPhish` (anything with an
        ``analyze`` accepting a snapshot or :class:`LoadResult`).
    browser:
        A :class:`ResilientBrowser` (preferred) or plain
        :class:`~repro.web.browser.Browser`.
    urls:
        Iterable of starting URLs.
    pool:
        Optional :class:`~repro.parallel.WorkerPool` fanning the
        *analysis* stage out over workers.  Page **loads always run
        serially in input order**: browsers, retry policies and
        fault-injecting webs are stateful (RNG streams, degradation
        notes, circuit breakers), so serial loading keeps every fault,
        retry and quarantine decision identical to the serial run.
        Analysis is a pure function of the loaded page, so the report —
        verdicts, ordering, quarantine records — is bit-identical to
        ``pool=None`` for any backend and worker count.
    tracer, metrics:
        Batch-level instruments.  Loads are observed live (the phase-1
        ``batch.load`` span); each page's analysis records into a fresh
        per-item tracer/registry whose output is spliced back in input
        order, so dumps are deterministic across backends and runs.
        With both left at their null defaults the function takes the
        exact pre-observability fast path.
    page_budget:
        Optional per-page deadline in seconds.  Each page's load runs
        under its own :class:`Deadline`; a load that blows the budget
        is quarantined as ``DeadlineExceeded``.  The seconds the load
        left over are carried into that page's analysis (target
        identification degrades rather than searching past the
        budget).  ``None`` (the default) keeps the historical
        unbudgeted fast path byte-identical.
    """
    report = BatchReport()
    observed = tracer.enabled or metrics.enabled
    clock = getattr(browser, "clock", None) or SystemClock()
    # Phase 1 (serial): load every page, quarantining failures.
    loaded_pages: list[tuple[str, LoadResult]] = []
    leftovers: list[float | None] = []  # budget seconds left per load
    outcomes: list[tuple[str, object]] = []  # (kind, record/index)
    with tracer.span("batch.load"):
        for url in urls:
            deadline = (
                Deadline(page_budget, clock=clock)
                if page_budget is not None
                else None
            )
            try:
                if deadline is not None:
                    loaded = browser.load(url, deadline=deadline)
                else:
                    loaded = browser.load(url)
            except (
                PageNotFound, RedirectLoopError, FetchError, DeadlineExceeded
            ) as error:
                record = QuarantinedPage.from_error(url, error)
                metrics.inc("batch_quarantined_total", error=record.error_kind)
                outcomes.append(("quarantined", record))
                continue
            if not isinstance(loaded, LoadResult):
                loaded = LoadResult(snapshot=loaded)
            outcomes.append(("analyzed", len(loaded_pages)))
            loaded_pages.append((url, loaded))
            leftovers.append(
                deadline.remaining() if deadline is not None else None
            )

    # Phase 2 (parallel): analyze the pages that loaded.
    loads = [loaded for _url, loaded in loaded_pages]
    budgeted = page_budget is not None
    batch_analyze = getattr(pipeline, "analyze_batch", None)
    if not observed:
        if budgeted:
            # Per-page deadlines interleave clock reads with analysis;
            # the batch path has no per-page deadline, so budgeted runs
            # keep the per-item route.
            worker = _BudgetedAnalyze(pipeline, clock)
            items = list(zip(loads, leftovers))
            if pool is None:
                verdicts = [worker(item) for item in items]
            else:
                verdicts = pool.map(worker, items)
        elif pool is None:
            # The reference path: one page at a time, exactly the
            # sequence every other execution strategy must reproduce.
            # Callers wanting columnar serial analysis use
            # ``pipeline.analyze_batch`` directly.
            verdicts = [pipeline.analyze(loaded) for loaded in loads]
        elif batch_analyze is not None:
            # Columnar pooled path: one scheduling round-trip and one
            # batch-extraction pass per chunk, instead of the per-page
            # dispatch whose overhead historically made the pool lose
            # to serial.  The chunk count is backend-aware (process
            # workers chunk per worker, the GIL-bound thread backend
            # runs one chunk).  Verdicts are bit-identical to the
            # per-page loop (the differential harness pins this), so
            # this is purely a throughput change.
            verdicts = pool.map_chunks(
                batch_analyze, loads,
                chunk_count=pool.columnar_chunks(len(loads)),
            )
        else:
            verdicts = pool.map(pipeline.analyze, loads)
    else:
        worker = _TracedAnalyze(pipeline, tracer.clock, budgeted=budgeted)
        items = list(zip(loads, leftovers)) if budgeted else loads
        if pool is None:
            observed_results = [worker(item) for item in items]
        else:
            # Cache counters accumulated inside process workers would
            # otherwise be lost with the pipeline copy; the probe ships
            # per-chunk deltas back for merging.  Chunked dispatch keeps
            # one scheduling round-trip per chunk; per-page isolation
            # lives inside the chunk worker.
            cache = getattr(
                getattr(getattr(pipeline, "detector", None), "extractor", None),
                "cache",
                None,
            )
            probes = [CacheCountsProbe(cache)] if cache is not None else []
            observed_results = pool.map_observed_chunks(
                _TracedChunk(worker), items, probes=probes,
                chunk_count=pool.columnar_chunks(len(items)),
            )
        verdicts = []
        for verdict, records, snapshot in observed_results:
            verdicts.append(verdict)
            tracer.adopt(records)
            metrics.merge(snapshot)

    # Phase 3: assemble the report in input order, as a serial run would.
    for kind, payload in outcomes:
        if kind == "quarantined":
            report.quarantined.append(payload)
            continue
        index = payload
        url, loaded = loaded_pages[index]
        report.analyzed.append(
            AnalyzedPage(
                url=url,
                verdict=verdicts[index],
                attempts=loaded.attempts,
                degradations=list(loaded.degradations),
            )
        )
    return report
