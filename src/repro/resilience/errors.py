"""Structured error taxonomy for the resilient analysis pipeline.

The live web fails in two fundamentally different ways, and the
pipeline's reaction must differ accordingly:

* **transient** faults (timeouts, connection resets, 5xx responses,
  search-engine hiccups) — worth retrying with backoff; the resource
  usually recovers within seconds;
* **permanent** faults (dead hosts, DNS failures, takedowns) — retrying
  wastes the per-page time budget; the page is quarantined instead.

Every error in this module derives from :class:`ResilienceError`, so
batch drivers can catch the whole taxonomy with a single handler while
still discriminating on the subclasses.  The pre-existing navigation
errors (:class:`~repro.web.browser.PageNotFound`,
:class:`~repro.web.browser.RedirectLoopError`) are treated as permanent
by the retry machinery without being re-parented here.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class of every failure the resilience layer models."""


# ---------------------------------------------------------------------------
# fetch-path errors
# ---------------------------------------------------------------------------
class FetchError(ResilienceError):
    """A page fetch failed; ``url`` names the resource that failed."""

    def __init__(self, url: str, message: str | None = None):
        self.url = url
        super().__init__(message or f"fetch failed: {url}")


class TransientFetchError(FetchError):
    """A fetch failure expected to heal on retry (timeouts, resets, 5xx)."""


class PermanentFetchError(FetchError):
    """A fetch failure no amount of retrying will fix (host is gone)."""


class FetchTimeout(TransientFetchError):
    """The remote host did not answer within the socket timeout."""

    def __init__(self, url: str):
        super().__init__(url, f"timed out fetching {url}")


class ConnectionReset(TransientFetchError):
    """The remote host reset the connection mid-transfer."""

    def __init__(self, url: str):
        super().__init__(url, f"connection reset fetching {url}")


class ServerError(TransientFetchError):
    """The remote host answered with a 5xx status."""

    def __init__(self, url: str, status: int = 503):
        self.status = status
        super().__init__(url, f"HTTP {status} fetching {url}")


class RetriesExhausted(TransientFetchError):
    """Every retry attempt failed; carries the last underlying error.

    Still classified transient — the page *might* load later — but the
    current analysis gives up and the batch layer quarantines the URL.
    """

    def __init__(self, url: str, attempts: int, last_error: Exception):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            url, f"gave up on {url} after {attempts} attempts: {last_error}"
        )


# ---------------------------------------------------------------------------
# budget errors
# ---------------------------------------------------------------------------
class DeadlineExceeded(ResilienceError):
    """The per-page time budget ran out before the work completed."""


# ---------------------------------------------------------------------------
# auxiliary-subsystem errors
# ---------------------------------------------------------------------------
class SearchUnavailableError(ResilienceError):
    """The search engine backing target identification is unreachable."""


class CircuitOpenError(SearchUnavailableError):
    """A circuit breaker is open: the call was rejected without trying.

    Subclasses :class:`SearchUnavailableError` so callers guarding the
    search engine handle breaker rejections and live outages uniformly.
    """


class OcrFailure(ResilienceError):
    """The OCR engine failed to process a screenshot."""
