"""A circuit-breaker-guarded view of the search engine.

Target identification (Section V-B) issues several search queries per
flagged page.  When the engine is down, every query would otherwise eat
a full timeout; :class:`GuardedSearchEngine` routes all queries through
one :class:`~repro.resilience.breaker.CircuitBreaker`, so a sick engine
is probed a bounded number of times and then failed fast — the pipeline
degrades to detector-only verdicts until the engine recovers.

The wrapper exposes the same query surface as
:class:`~repro.web.search.SearchEngine`, so a
:class:`~repro.core.target.TargetIdentifier` accepts either
transparently.
"""

from __future__ import annotations

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock
from repro.resilience.errors import SearchUnavailableError
from repro.web.search import SearchResult


class GuardedSearchEngine:
    """Wraps a search engine; every query goes through the breaker.

    Parameters
    ----------
    inner:
        The real (or fault-injected) search engine.
    breaker:
        The guarding breaker; a default one (5 failures, 30 s cooldown,
        counting :class:`SearchUnavailableError`) is built when omitted.
    clock:
        Clock for the default breaker's cooldown.
    """

    def __init__(
        self,
        inner,
        breaker: CircuitBreaker | None = None,
        clock: Clock | None = None,
    ):
        self.inner = inner
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5,
            recovery_time=30.0,
            failure_types=(SearchUnavailableError,),
            clock=clock,
            name="search",
        )

    def __len__(self) -> int:
        return len(self.inner)

    def query(self, terms, top_k: int = 10) -> list[SearchResult]:
        """Run a query through the breaker.

        Raises :class:`~repro.resilience.errors.CircuitOpenError`
        immediately while the circuit is open, and propagates the
        engine's own :class:`SearchUnavailableError` (counted as a
        breaker failure) while it is closed.
        """
        return self.breaker.call(self.inner.query, terms, top_k=top_k)

    def result_rdns(self, terms, top_k: int = 10) -> set[str]:
        """Guarded counterpart of ``SearchEngine.result_rdns``."""
        return {result.rdn for result in self.query(terms, top_k=top_k)}

    def result_mlds(self, terms, top_k: int = 10) -> set[str]:
        """Guarded counterpart of ``SearchEngine.result_mlds``."""
        return {result.mld for result in self.query(terms, top_k=top_k)}
