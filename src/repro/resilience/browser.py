"""A fault-tolerant browser: retries, per-page deadlines, degradation notes.

:class:`ResilientBrowser` wraps the plain
:class:`~repro.web.browser.Browser` with the retry/deadline machinery:

* transient fetch errors (timeouts, resets, 5xx) are retried with
  exponential backoff under a :class:`~repro.resilience.retry.RetryPolicy`;
* each page load runs against a :class:`~repro.resilience.retry.Deadline`
  so one sick URL cannot stall a batch run;
* permanent failures (:class:`~repro.web.browser.PageNotFound`,
  :class:`~repro.web.browser.RedirectLoopError`,
  :class:`~repro.resilience.errors.PermanentFetchError`) are *not*
  retried — they propagate immediately for the batch layer to quarantine;
* content degradations reported by a fault-injecting web (truncated
  HTML, missing screenshots, slow responses) are collected into the
  returned :class:`LoadResult` so downstream verdicts can be tagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, AnyMetrics
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.errors import (
    DeadlineExceeded,
    FetchError,
    RetriesExhausted,
    TransientFetchError,
)
from repro.resilience.retry import Deadline, RetryPolicy
from repro.web.browser import Browser, PageNotFound, RedirectLoopError
from repro.web.page import PageSnapshot


@dataclass
class LoadResult:
    """A successfully loaded page plus how hard the load fought for it."""

    snapshot: PageSnapshot
    attempts: int = 1
    degradations: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def degraded(self) -> bool:
        """True when the snapshot loaded with reduced fidelity."""
        return bool(self.degradations)


class ResilientBrowser:
    """Loads pages through retries and a per-page time budget.

    Parameters
    ----------
    web:
        The (possibly fault-injected) synthetic web to browse.
    policy:
        Retry policy for transient fetch errors (default: 4 attempts,
        50 ms base backoff).
    page_budget:
        Per-page deadline in seconds; ``None`` disables the budget.
    clock:
        Time source shared by deadline and backoff sleeps.
    max_redirects:
        Redirect hop limit, forwarded to the underlying browser.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`: each page load
        becomes a ``browse.load`` span whose children are the
        per-attempt ``browse.navigate`` spans of the inner browser.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` counting
        ``browse_loads_total`` / ``browse_retries_total`` on top of the
        inner browser's navigation/redirect counters.
    """

    def __init__(
        self,
        web,
        policy: RetryPolicy | None = None,
        page_budget: float | None = None,
        clock: Clock | None = None,
        max_redirects: int = 10,
        tracer: AnyTracer = NULL_TRACER,
        metrics: AnyMetrics = NULL_METRICS,
    ):
        self.clock = clock or SystemClock()
        self.policy = policy or RetryPolicy(clock=self.clock)
        self.page_budget = page_budget
        self.tracer = tracer
        self.metrics = metrics
        self._browser = Browser(
            web,
            max_redirects=max_redirects,
            tracer=tracer if tracer.enabled else None,
            metrics=metrics if metrics.enabled else None,
        )
        self.web = web

    # ------------------------------------------------------------------
    def load(
        self, starting_url: str, deadline: Deadline | None = None
    ) -> LoadResult:
        """Visit ``starting_url``, riding out transient faults.

        Returns a :class:`LoadResult`; raises
        :class:`~repro.resilience.errors.RetriesExhausted` when every
        attempt failed transiently,
        :class:`~repro.resilience.errors.DeadlineExceeded` when the page
        budget ran out first, and the permanent navigation errors
        unchanged.
        """
        if deadline is None and self.page_budget is not None:
            deadline = Deadline(self.page_budget, clock=self.clock)
        started = self.clock.now()
        degradations: list[str] = []

        def _attempt() -> PageSnapshot:
            self._pop_degradations()  # drop notes from a failed attempt
            return self._browser.load(starting_url)

        with self.tracer.span("browse.load", url=starting_url) as span:
            try:
                outcome = self.policy.call(_attempt, deadline=deadline)
            except TransientFetchError as error:
                span.set(failed=True, attempts=self.policy.max_attempts)
                self.metrics.inc(
                    "browse_retries_total", self.policy.max_attempts - 1
                )
                raise RetriesExhausted(
                    starting_url, self.policy.max_attempts, error
                ) from error
            if deadline is not None:
                # A stalled response can return *after* blowing the
                # budget; callers must not treat it as within-deadline.
                deadline.check("page load")
            degradations = self._pop_degradations()
            span.set(
                attempts=outcome.attempts, degraded=bool(degradations)
            )
            self.metrics.inc("browse_loads_total")
            if outcome.attempts > 1:
                self.metrics.inc(
                    "browse_retries_total", outcome.attempts - 1
                )
            return LoadResult(
                snapshot=outcome.result,
                attempts=outcome.attempts,
                degradations=degradations,
                elapsed=self.clock.now() - started,
            )

    def try_load(self, starting_url: str) -> LoadResult | None:
        """Like :meth:`load` but returns ``None`` on any navigation failure."""
        try:
            return self.load(starting_url)
        except (PageNotFound, RedirectLoopError, FetchError, DeadlineExceeded):
            return None

    # ------------------------------------------------------------------
    def _pop_degradations(self) -> list[str]:
        """Drain degradation notes from a fault-injecting web, if any."""
        pop = getattr(self.web, "pop_degradations", None)
        if pop is None:
            return []
        return list(pop())
