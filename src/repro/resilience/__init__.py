"""Resilience layer: retries, deadlines, circuit breaking, degradation.

The paper's system runs against the live web, where fetches time out,
HTML arrives truncated, OCR fails and the search engine behind target
identification goes unreachable.  This package makes the reproduction
survive those conditions the way a production deployment must:

* a structured error taxonomy (:mod:`repro.resilience.errors`)
  separating transient from permanent failures;
* :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  with jitter over an injectable clock — and per-page
  :class:`~repro.resilience.retry.Deadline` budgets;
* :class:`~repro.resilience.breaker.CircuitBreaker` and the
  :class:`~repro.resilience.search.GuardedSearchEngine` guarding the
  search engine;
* :class:`~repro.resilience.browser.ResilientBrowser` wrapping page
  loads, and :func:`~repro.resilience.batch.analyze_many` quarantining
  failed pages instead of aborting batch runs.

The matching fault-injection harness lives in :mod:`repro.web.faults`.
"""

from repro.resilience.batch import (
    AnalyzedPage,
    BatchReport,
    QuarantinedPage,
    analyze_many,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.browser import LoadResult, ResilientBrowser
from repro.resilience.clock import Clock, ManualClock, SystemClock
from repro.resilience.errors import (
    CircuitOpenError,
    ConnectionReset,
    DeadlineExceeded,
    FetchError,
    FetchTimeout,
    OcrFailure,
    PermanentFetchError,
    ResilienceError,
    RetriesExhausted,
    SearchUnavailableError,
    ServerError,
    TransientFetchError,
)
from repro.resilience.retry import Deadline, RetryOutcome, RetryPolicy
from repro.resilience.search import GuardedSearchEngine

__all__ = [
    "AnalyzedPage",
    "BatchReport",
    "CircuitBreaker",
    "CircuitOpenError",
    "Clock",
    "ConnectionReset",
    "Deadline",
    "DeadlineExceeded",
    "FetchError",
    "FetchTimeout",
    "GuardedSearchEngine",
    "LoadResult",
    "ManualClock",
    "OcrFailure",
    "PermanentFetchError",
    "QuarantinedPage",
    "ResilienceError",
    "ResilientBrowser",
    "RetriesExhausted",
    "RetryOutcome",
    "RetryPolicy",
    "SearchUnavailableError",
    "ServerError",
    "SystemClock",
    "TransientFetchError",
    "analyze_many",
]
