"""Injectable time sources for the resilience layer.

Retry backoff, deadlines and circuit-breaker cooldowns all consume
time.  Hard-coding ``time.monotonic``/``time.sleep`` would make every
test slow and flaky, so each component takes a :class:`Clock`.  The
default :class:`SystemClock` defers to the real timers; tests and the
fault-injection harness use :class:`ManualClock`, where ``sleep``
advances a virtual instant instantly and deterministically — a
simulated slow response costs simulated seconds, not wall-clock ones.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: a monotonic time source with a matching sleep."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        """Current ``time.monotonic`` reading."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Actually sleep for ``seconds``."""
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A virtual clock advanced explicitly or by (instant) sleeps."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` without blocking."""
        if seconds > 0:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Jump the clock forward (e.g. past a breaker cooldown)."""
        if seconds < 0:
            raise ValueError(f"cannot rewind a monotonic clock ({seconds})")
        self._now += seconds
