"""Request coalescing: duplicate in-flight work collapses to one.

Phishing checks are popularity-skewed — a campaign URL going viral
arrives thousands of times a minute — so the single highest-leverage
overload defence is never analyzing the same page twice concurrently.
Two layers implement it:

* :class:`InflightTable` — URL-keyed leader/follower sharing.  The
  first *admitted* request for a URL is the *leader*; requests for the
  same URL arriving while the leader is queued or in flight attach as
  *followers* and receive the leader's outcome at the leader's finish
  time, consuming no queue slot, no tokens and no worker.  A hot-key
  storm therefore costs one analysis, not one per request.
* :class:`VerdictMemo` — content-hash memoization.  Once a page body
  has been analyzed, any later request whose loaded snapshot hashes to
  the same ``snapshot_fingerprint`` reuses the verdict and is charged
  only the (cheap) memo-hit cost.  Keyed on content, not URL, so
  mirrored campaign pages coalesce too.  Backed by a
  :class:`~repro.serve.cache.ShardedTtlCache`, so long-running engines
  can bound it (LRU) and age it out (TTL on the injected clock); the
  defaults — unbounded, no expiry — reproduce the original
  run-scoped memo bit for bit.
"""

from __future__ import annotations

from repro.resilience.clock import Clock
from repro.serve.cache import ShardedTtlCache
from repro.serve.request import ServeRequest


class InflightTable:
    """Tracks which URLs have an analysis pending, with followers."""

    def __init__(self) -> None:
        self._leaders: dict[str, int] = {}          # url -> leader id
        self._followers: dict[int, list[ServeRequest]] = {}
        self.coalesced_total = 0

    def leader_for(self, url: str) -> int | None:
        """The queued/in-flight leader's request id for ``url``, if any."""
        return self._leaders.get(url)

    def lead(self, request: ServeRequest) -> None:
        """Register ``request`` as the pending leader for its URL."""
        self._leaders[request.url] = request.request_id
        self._followers[request.request_id] = []

    def follow(self, leader_id: int, request: ServeRequest) -> None:
        """Attach ``request`` to a pending leader's result."""
        self._followers[leader_id].append(request)
        self.coalesced_total += 1

    def complete(self, request: ServeRequest) -> list[ServeRequest]:
        """Finish a leader; return its followers in arrival order."""
        self._leaders.pop(request.url, None)
        return self._followers.pop(request.request_id, [])

    def __len__(self) -> int:
        return len(self._leaders)


class VerdictMemo:
    """Content-hash verdict cache: same page body, same verdict.

    The fingerprint covers the full snapshot (HTML, rendered text,
    screenshot, logged URLs), so a degraded load — truncated body,
    lost screenshot — hashes differently from the clean load and never
    pollutes the clean verdict, and vice versa.

    A thin facade over :class:`~repro.serve.cache.ShardedTtlCache`:
    ``capacity`` bounds the memo (LRU per shard), ``ttl`` ages
    verdicts out on the injected ``clock``, and both default to off so
    a plain ``VerdictMemo()`` behaves exactly like the historical
    unbounded dict.
    """

    def __init__(
        self,
        capacity: int | None = None,
        ttl: float | None = None,
        clock: Clock | None = None,
        shards: int = 4,
    ) -> None:
        self._cache = ShardedTtlCache(
            capacity=capacity, ttl=ttl, clock=clock, shards=shards
        )

    @property
    def hits(self) -> int:
        """Lookups answered from the memo."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh analysis."""
        return self._cache.misses

    def get(self, fingerprint: str):
        """The memoized verdict for a content hash, or ``None``."""
        return self._cache.get(fingerprint)

    def put(self, fingerprint: str, verdict: object) -> None:
        """Memoize a freshly computed verdict."""
        self._cache.put(fingerprint, verdict)

    def shard_stats(self):
        """Per-shard counter snapshots (see ``ShardedTtlCache``)."""
        return self._cache.shard_stats()

    def stats(self) -> dict:
        """Merged counter snapshot across shards."""
        return self._cache.stats()

    def __len__(self) -> int:
        return len(self._cache)
