"""Request coalescing: duplicate in-flight work collapses to one.

Phishing checks are popularity-skewed — a campaign URL going viral
arrives thousands of times a minute — so the single highest-leverage
overload defence is never analyzing the same page twice concurrently.
Two layers implement it:

* :class:`InflightTable` — URL-keyed leader/follower sharing.  The
  first *admitted* request for a URL is the *leader*; requests for the
  same URL arriving while the leader is queued or in flight attach as
  *followers* and receive the leader's outcome at the leader's finish
  time, consuming no queue slot, no tokens and no worker.  A hot-key
  storm therefore costs one analysis, not one per request.
* :class:`VerdictMemo` — content-hash memoization.  Once a page body
  has been analyzed, any later request whose loaded snapshot hashes to
  the same ``snapshot_fingerprint`` reuses the verdict and is charged
  only the (cheap) memo-hit cost.  Keyed on content, not URL, so
  mirrored campaign pages coalesce too.
"""

from __future__ import annotations

from repro.serve.request import ServeRequest


class InflightTable:
    """Tracks which URLs have an analysis pending, with followers."""

    def __init__(self) -> None:
        self._leaders: dict[str, int] = {}          # url -> leader id
        self._followers: dict[int, list[ServeRequest]] = {}
        self.coalesced_total = 0

    def leader_for(self, url: str) -> int | None:
        """The queued/in-flight leader's request id for ``url``, if any."""
        return self._leaders.get(url)

    def lead(self, request: ServeRequest) -> None:
        """Register ``request`` as the pending leader for its URL."""
        self._leaders[request.url] = request.request_id
        self._followers[request.request_id] = []

    def follow(self, leader_id: int, request: ServeRequest) -> None:
        """Attach ``request`` to a pending leader's result."""
        self._followers[leader_id].append(request)
        self.coalesced_total += 1

    def complete(self, request: ServeRequest) -> list[ServeRequest]:
        """Finish a leader; return its followers in arrival order."""
        self._leaders.pop(request.url, None)
        return self._followers.pop(request.request_id, [])

    def __len__(self) -> int:
        return len(self._leaders)


class VerdictMemo:
    """Content-hash verdict cache: same page body, same verdict.

    The fingerprint covers the full snapshot (HTML, rendered text,
    screenshot, logged URLs), so a degraded load — truncated body,
    lost screenshot — hashes differently from the clean load and never
    pollutes the clean verdict, and vice versa.
    """

    def __init__(self) -> None:
        self._verdicts: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str):
        """The memoized verdict for a content hash, or ``None``."""
        verdict = self._verdicts.get(fingerprint)
        if verdict is not None:
            self.hits += 1
        else:
            self.misses += 1
        return verdict

    def put(self, fingerprint: str, verdict: object) -> None:
        """Memoize a freshly computed verdict."""
        self._verdicts[fingerprint] = verdict

    def __len__(self) -> int:
        return len(self._verdicts)
