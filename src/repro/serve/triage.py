"""Tier-0 triage: URL-only verdicts for the obvious majority.

PhishDef [Le et al.] and "Detecting Phishing sites Without Visiting
them" show URL-only lexical models are accurate enough to
short-circuit the obvious cases — so the serving ladder's first tier
scores the *URL alone* (no page load, no snapshot, microseconds) and
resolves it immediately when the score clears a calibrated two-sided
band:

* ``score >= phish_threshold`` — confident phish, blocked at tier 0;
* ``score <= legit_threshold`` — confident legitimate, cleared at
  tier 0;
* anything between — **escalate** to the full 212-feature +
  target-identification pipeline, whose path (and verdicts) stay
  byte-identical to an untriaged engine.

The thresholds come from
:func:`repro.ml.calibration.two_sided_thresholds` on validation data,
so both confident regions carry explicit error budgets.  The model is
a plain picklable object (numpy weights + two floats): it ships to
worker processes and serialises into model registries as-is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.url_lexical import UrlLexicalClassifier
from repro.ml.calibration import two_sided_thresholds

#: Tier-0 decisions (the ``action`` label on ``serve_triage_total``).
TRIAGE_PHISH = "phish"
TRIAGE_LEGITIMATE = "legitimate"
TRIAGE_ESCALATE = "escalate"


@dataclass(frozen=True)
class TriageDecision:
    """One URL's tier-0 outcome: an action plus the raw score."""

    action: str
    score: float

    @property
    def resolved(self) -> bool:
        """True when tier 0 answered without the full pipeline."""
        return self.action != TRIAGE_ESCALATE


class TriageModel:
    """A servable URL-only pre-filter with calibrated thresholds.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.baselines.url_lexical.UrlLexicalClassifier`
        (any object with ``predict_proba_urls``).
    legit_threshold / phish_threshold:
        The calibrated confident-legitimate / confident-phish score
        cuts; scores strictly between them escalate.
    """

    def __init__(
        self,
        classifier: UrlLexicalClassifier,
        legit_threshold: float,
        phish_threshold: float,
    ):
        if not 0.0 <= legit_threshold <= 1.0:
            raise ValueError(
                f"legit_threshold must be in [0, 1], got {legit_threshold}"
            )
        if not 0.0 <= phish_threshold <= 1.0:
            raise ValueError(
                f"phish_threshold must be in [0, 1], got {phish_threshold}"
            )
        if legit_threshold > phish_threshold:
            raise ValueError(
                f"legit_threshold {legit_threshold} must not exceed "
                f"phish_threshold {phish_threshold}"
            )
        self.classifier = classifier
        self.legit_threshold = legit_threshold
        self.phish_threshold = phish_threshold

    @classmethod
    def calibrate(
        cls,
        classifier: UrlLexicalClassifier,
        urls,
        labels,
        max_fpr: float = 0.0,
        max_fnr: float = 0.0,
    ) -> "TriageModel":
        """Fit the two-sided band on validation URLs and labels.

        ``max_fpr`` bounds the share of validation legitimates the
        confident-phish region may swallow; ``max_fnr`` bounds the
        share of validation phish the confident-legitimate region may
        clear.  Both default to zero — tier 0 only answers where the
        validation data is perfectly separated.
        """
        scores = classifier.predict_proba_urls(urls)
        legit, phish = two_sided_thresholds(
            labels, scores, max_fpr=max_fpr, max_fnr=max_fnr
        )
        return cls(classifier, legit, phish)

    def _action(self, score: float) -> str:
        if score >= self.phish_threshold:
            return TRIAGE_PHISH
        if score <= self.legit_threshold:
            return TRIAGE_LEGITIMATE
        return TRIAGE_ESCALATE

    def decide(self, url: str) -> TriageDecision:
        """Tier-0 decision for one URL."""
        return self.decide_batch([url])[0]

    def decide_batch(self, urls) -> list[TriageDecision]:
        """Tier-0 decisions for a URL batch in one vectorised pass."""
        scores = self.classifier.predict_proba_urls(urls)
        return [
            TriageDecision(action=self._action(float(score)),
                           score=float(score))
            for score in scores
        ]

    def escalation_rate(self, urls) -> float:
        """Share of ``urls`` tier 0 would pass to the full pipeline."""
        urls = list(urls)
        if not urls:
            return 0.0
        decisions = self.decide_batch(urls)
        escalated = sum(
            1 for decision in decisions if not decision.resolved
        )
        return escalated / len(urls)
