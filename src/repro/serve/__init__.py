"""``repro.serve`` — the deterministic overload-robust serving engine.

Turns the offline Know Your Phish pipeline into a request server with
explicit overload behaviour: token-bucket admission control behind a
bounded queue, watermark backpressure, request coalescing (URL-level
in-flight sharing + content-hash memoization), end-to-end deadline
propagation down to individual search queries, circuit breakers on
the search tier, and graceful drain.  Paired with
:mod:`repro.serve.loadgen`, whole overload/chaos scenarios run in
simulated time and produce byte-identical reports.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.cache import (
    CacheEntry,
    ShardedTtlCache,
    TtlCacheShard,
    shard_index,
)
from repro.serve.coalesce import InflightTable, VerdictMemo
from repro.serve.engine import ServingEngine
from repro.serve.loadgen import (
    ChaosEvent,
    ZipfSampler,
    burst,
    build_requests,
    constant_rate,
    hot_key_storm,
    search_outage,
    worker_join,
    worker_loss,
)
from repro.serve.report import ServingReport
from repro.serve.request import (
    DEGRADED,
    SERVED,
    SHED,
    SHED_DEADLINE,
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    SHED_UPSTREAM,
    TIER_FULL,
    TIER_NEGATIVE,
    TIER_TRIAGE,
    ServeRequest,
    ServeResponse,
)
from repro.serve.triage import (
    TRIAGE_ESCALATE,
    TRIAGE_LEGITIMATE,
    TRIAGE_PHISH,
    TriageDecision,
    TriageModel,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "InflightTable",
    "VerdictMemo",
    "ServingEngine",
    "ChaosEvent",
    "ZipfSampler",
    "burst",
    "build_requests",
    "constant_rate",
    "hot_key_storm",
    "search_outage",
    "worker_join",
    "worker_loss",
    "ServingReport",
    "DEGRADED",
    "SERVED",
    "SHED",
    "SHED_DEADLINE",
    "SHED_DRAINING",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMITED",
    "SHED_UPSTREAM",
    "TIER_FULL",
    "TIER_NEGATIVE",
    "TIER_TRIAGE",
    "ServeRequest",
    "ServeResponse",
    "CacheEntry",
    "ShardedTtlCache",
    "TtlCacheShard",
    "shard_index",
    "TRIAGE_ESCALATE",
    "TRIAGE_LEGITIMATE",
    "TRIAGE_PHISH",
    "TriageDecision",
    "TriageModel",
]
