"""Serving-run reports: outcome counts, latency percentiles, JSON.

A :class:`ServingReport` is the engine's complete account of one run:
every request's terminal response (in request order) plus the
behavioural bounds the overload benchmark asserts on — peak queue
depth against its limit, shed breakdown by reason, coalescing and
memoization effectiveness, and nearest-rank latency percentiles over
the completed responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.quantiles import nearest_rank
from repro.serve.request import DEGRADED, SERVED, ServeResponse


@dataclass
class ServingReport:
    """Everything one :meth:`ServingEngine.run` produced."""

    responses: list[ServeResponse] = field(default_factory=list)
    max_queue_depth: int = 0
    max_inflight: int = 0
    queue_limit: int = 0
    workers: int = 0
    coalesced: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    admission_stats: dict = field(default_factory=dict)
    triage_enabled: bool = False
    negative_cache_enabled: bool = False
    cache_stats: dict = field(default_factory=dict)

    # -- outcome counts ------------------------------------------------
    @property
    def total(self) -> int:
        """Requests that received a terminal response."""
        return len(self.responses)

    @property
    def served_count(self) -> int:
        """Full-fidelity verdicts."""
        return sum(1 for r in self.responses if r.outcome == SERVED)

    @property
    def degraded_count(self) -> int:
        """Reduced-fidelity verdicts (outage / deadline / partial page)."""
        return sum(1 for r in self.responses if r.outcome == DEGRADED)

    @property
    def shed_count(self) -> int:
        """Requests refused without a verdict."""
        return sum(1 for r in self.responses if r.shed)

    @property
    def completed_count(self) -> int:
        """Served + degraded."""
        return self.served_count + self.degraded_count

    @property
    def shed_rate(self) -> float:
        """Fraction of requests shed."""
        return self.shed_count / self.total if self.total else 0.0

    def shed_reasons(self) -> dict[str, int]:
        """Shed counts by structured reason, key-sorted."""
        counts: dict[str, int] = {}
        for response in self.responses:
            if response.shed and response.shed_reason:
                counts[response.shed_reason] = (
                    counts.get(response.shed_reason, 0) + 1
                )
        return dict(sorted(counts.items()))

    def degradation_tags(self) -> dict[str, int]:
        """Degradation-tag histogram over completed responses."""
        counts: dict[str, int] = {}
        for response in self.responses:
            for tag in response.degradations:
                counts[tag] = counts.get(tag, 0) + 1
        return dict(sorted(counts.items()))

    # -- tiers ---------------------------------------------------------
    def tier_counts(self) -> dict[str, int]:
        """Terminal responses by serving tier, key-sorted."""
        counts: dict[str, int] = {}
        for response in self.responses:
            counts[response.tier] = counts.get(response.tier, 0) + 1
        return dict(sorted(counts.items()))

    def tier_summary(self) -> dict[str, dict]:
        """Per-tier counts and nearest-rank latency percentiles."""
        tiers: dict[str, dict] = {}
        for tier, count in self.tier_counts().items():
            completed = sum(
                1 for response in self.responses
                if response.completed and response.tier == tier
            )
            tiers[tier] = {
                "count": count,
                "completed": completed,
                "latency_p50": self.latency_percentile(0.50, tier=tier),
                "latency_p99": self.latency_percentile(0.99, tier=tier),
            }
        return tiers

    # -- latency -------------------------------------------------------
    def latencies(self, tier: str | None = None) -> list[float]:
        """Sorted latencies of completed responses (optionally one tier)."""
        return sorted(
            response.latency
            for response in self.responses
            if response.completed
            and (tier is None or response.tier == tier)
        )

    def latency_percentile(
        self, quantile: float, tier: str | None = None
    ) -> float:
        """Nearest-rank percentile over completed-response latencies.

        ``tier`` restricts the population to one serving tier.  A run
        (or tier) with zero completed responses has no latency
        distribution; the percentile reads 0.0 rather than indexing
        into an empty ranking.  Delegates to the shared
        :func:`repro.obs.quantiles.nearest_rank` — the same estimator
        the SLO engine and run report use.
        """
        return nearest_rank(self.latencies(tier=tier), quantile)

    # -- export --------------------------------------------------------
    def summary(self) -> dict:
        """Flat JSON-safe summary for reports and CI artifacts.

        The key set is stable for untriaged engines (the chaos
        benchmark's byte-identity contract); the ``tiers`` block only
        appears when the triage ladder or the negative cache was
        configured.
        """
        data = {
            "total": self.total,
            "served": self.served_count,
            "degraded": self.degraded_count,
            "shed": self.shed_count,
            "shed_rate": self.shed_rate,
            "shed_reasons": self.shed_reasons(),
            "degradation_tags": self.degradation_tags(),
            "coalesced": self.coalesced,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "max_queue_depth": self.max_queue_depth,
            "queue_limit": self.queue_limit,
            "max_inflight": self.max_inflight,
            "workers": self.workers,
            "latency_p50": self.latency_percentile(0.50),
            "latency_p99": self.latency_percentile(0.99),
            "admission": dict(self.admission_stats),
        }
        if self.triage_enabled or self.negative_cache_enabled:
            data["tiers"] = self.tier_summary()
        return data

    def as_dict(self) -> dict:
        """The full machine-readable report: summary + tiers + caches.

        Unlike :meth:`summary`, the per-tier breakdown and the cache
        shard statistics are always present, whatever the engine
        configuration; safe on empty runs (zero responses yield empty
        tier tables and 0.0 percentiles).
        """
        data = self.summary()
        data["tiers"] = self.tier_summary()
        data["cache"] = dict(self.cache_stats)
        return data
