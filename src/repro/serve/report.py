"""Serving-run reports: outcome counts, latency percentiles, JSON.

A :class:`ServingReport` is the engine's complete account of one run:
every request's terminal response (in request order) plus the
behavioural bounds the overload benchmark asserts on — peak queue
depth against its limit, shed breakdown by reason, coalescing and
memoization effectiveness, and nearest-rank latency percentiles over
the completed responses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serve.request import DEGRADED, SERVED, ServeResponse


@dataclass
class ServingReport:
    """Everything one :meth:`ServingEngine.run` produced."""

    responses: list[ServeResponse] = field(default_factory=list)
    max_queue_depth: int = 0
    max_inflight: int = 0
    queue_limit: int = 0
    workers: int = 0
    coalesced: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    admission_stats: dict = field(default_factory=dict)

    # -- outcome counts ------------------------------------------------
    @property
    def total(self) -> int:
        """Requests that received a terminal response."""
        return len(self.responses)

    @property
    def served_count(self) -> int:
        """Full-fidelity verdicts."""
        return sum(1 for r in self.responses if r.outcome == SERVED)

    @property
    def degraded_count(self) -> int:
        """Reduced-fidelity verdicts (outage / deadline / partial page)."""
        return sum(1 for r in self.responses if r.outcome == DEGRADED)

    @property
    def shed_count(self) -> int:
        """Requests refused without a verdict."""
        return sum(1 for r in self.responses if r.shed)

    @property
    def completed_count(self) -> int:
        """Served + degraded."""
        return self.served_count + self.degraded_count

    @property
    def shed_rate(self) -> float:
        """Fraction of requests shed."""
        return self.shed_count / self.total if self.total else 0.0

    def shed_reasons(self) -> dict[str, int]:
        """Shed counts by structured reason, key-sorted."""
        counts: dict[str, int] = {}
        for response in self.responses:
            if response.shed and response.shed_reason:
                counts[response.shed_reason] = (
                    counts.get(response.shed_reason, 0) + 1
                )
        return dict(sorted(counts.items()))

    def degradation_tags(self) -> dict[str, int]:
        """Degradation-tag histogram over completed responses."""
        counts: dict[str, int] = {}
        for response in self.responses:
            for tag in response.degradations:
                counts[tag] = counts.get(tag, 0) + 1
        return dict(sorted(counts.items()))

    # -- latency -------------------------------------------------------
    def latencies(self) -> list[float]:
        """Sorted latencies of completed (served/degraded) responses."""
        return sorted(
            response.latency
            for response in self.responses
            if response.completed
        )

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank percentile over completed-response latencies."""
        if not 0 < quantile <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        ordered = self.latencies()
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(quantile * len(ordered)))
        return ordered[rank - 1]

    # -- export --------------------------------------------------------
    def summary(self) -> dict:
        """Flat JSON-safe summary for reports and CI artifacts."""
        return {
            "total": self.total,
            "served": self.served_count,
            "degraded": self.degraded_count,
            "shed": self.shed_count,
            "shed_rate": self.shed_rate,
            "shed_reasons": self.shed_reasons(),
            "degradation_tags": self.degradation_tags(),
            "coalesced": self.coalesced,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "max_queue_depth": self.max_queue_depth,
            "queue_limit": self.queue_limit,
            "max_inflight": self.max_inflight,
            "workers": self.workers,
            "latency_p50": self.latency_percentile(0.50),
            "latency_p99": self.latency_percentile(0.99),
            "admission": dict(self.admission_stats),
        }
