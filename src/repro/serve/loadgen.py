"""Deterministic load generation and chaos scheduling.

Serving behaviour only matters under realistic load shapes, and the
realistic shape for URL checks is *skew*: a handful of viral campaign
URLs dominate arrivals (the case request coalescing exists for).  The
generator therefore samples URLs from a seeded Zipf distribution and
composes arrival schedules — steady rates, bursts, hot-key storms —
into one sorted list of :class:`~repro.serve.request.ServeRequest`
arrivals.

Chaos is scheduled the same way: a :class:`ChaosEvent` is a labelled
action fired at a simulated instant (search outage begins, a worker
dies).  Everything is seeded and pure — the same inputs produce the
same workload byte for byte, which is what lets the overload benchmark
assert exact outcomes.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.serve.request import ServeRequest


class ZipfSampler:
    """Samples URLs with Zipf-skewed popularity (rank ``r`` ∝ r^-s).

    Parameters
    ----------
    urls:
        Candidate URLs; position is popularity rank (first = hottest).
    exponent:
        Skew ``s``; 0 is uniform, ~1 matches observed web popularity.
    seed:
        Seed for the sampling stream.
    """

    def __init__(
        self, urls: Sequence[str], exponent: float = 1.0, seed: int = 0
    ):
        if not urls:
            raise ValueError("urls must be non-empty")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.urls = list(urls)
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [
            (rank + 1) ** -exponent for rank in range(len(self.urls))
        ]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cumulative = cumulative

    def sample(self) -> str:
        """Draw one URL from the popularity distribution."""
        index = bisect.bisect_left(self._cumulative, self._rng.random())
        return self.urls[min(index, len(self.urls) - 1)]


@dataclass(frozen=True)
class _RawArrival:
    time: float
    url: str


def constant_rate(
    sampler: ZipfSampler,
    rate: float,
    duration: float,
    start: float = 0.0,
) -> list[_RawArrival]:
    """Evenly spaced arrivals at ``rate``/s for ``duration`` seconds."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    count = int(rate * duration)
    return [
        _RawArrival(time=start + index / rate, url=sampler.sample())
        for index in range(count)
    ]


def burst(
    sampler: ZipfSampler,
    at: float,
    count: int,
    spread: float = 0.0,
) -> list[_RawArrival]:
    """``count`` arrivals packed into ``[at, at + spread]``."""
    spacing = spread / count if count else 0.0
    return [
        _RawArrival(time=at + index * spacing, url=sampler.sample())
        for index in range(count)
    ]


def hot_key_storm(
    url: str,
    at: float,
    count: int,
    spread: float = 0.0,
) -> list[_RawArrival]:
    """A storm of ``count`` requests for one (viral) URL."""
    spacing = spread / count if count else 0.0
    return [
        _RawArrival(time=at + index * spacing, url=url)
        for index in range(count)
    ]


def build_requests(
    *schedules: Sequence[_RawArrival],
    budget: float | None = None,
) -> list[ServeRequest]:
    """Merge schedules into time-ordered requests with stable ids.

    Ties on arrival time break by schedule order then position —
    deterministic for any composition of generators.
    """
    merged: list[tuple[float, int, str]] = []
    sequence = 0
    for schedule in schedules:
        for arrival in schedule:
            merged.append((arrival.time, sequence, arrival.url))
            sequence += 1
    merged.sort(key=lambda item: (item[0], item[1]))
    return [
        ServeRequest(
            request_id=index, url=url, arrival=time, budget=budget
        )
        for index, (time, _seq, url) in enumerate(merged)
    ]


@dataclass(frozen=True)
class ChaosEvent:
    """A labelled fault (or repair) fired at a simulated instant."""

    time: float
    label: str
    action: Callable[[object], None]   # receives the ServingEngine


def search_outage(search, at: float, duration: float) -> list[ChaosEvent]:
    """Force a :class:`FlakySearchEngine` down for ``duration`` seconds."""
    return [
        ChaosEvent(at, "search_down", lambda _engine: search.force_down()),
        ChaosEvent(
            at + duration, "search_up", lambda _engine: search.restore()
        ),
    ]


def worker_loss(at: float, count: int = 1) -> list[ChaosEvent]:
    """Kill ``count`` workers at instant ``at``."""
    return [
        ChaosEvent(
            at, "worker_loss", lambda engine: engine.lose_worker()
        )
        for _ in range(count)
    ]


def worker_join(at: float, count: int = 1) -> list[ChaosEvent]:
    """Add ``count`` workers at instant ``at`` (recovery/scale-up)."""
    return [
        ChaosEvent(at, "worker_join", lambda engine: engine.add_worker())
        for _ in range(count)
    ]
