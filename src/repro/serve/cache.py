"""Sharded TTL + LRU caches for the serving tier.

Long-running serving needs a principled cache story: a verdict must
not outlive the page it describes (phishing campaigns live hours, not
days), memory must be bounded under arbitrary traffic, and a
production deployment spreads the key space over shards so each shard
stays small and independently evictable.  One implementation serves
every cache in the system:

* :class:`TtlCacheShard` — a single LRU + TTL map.  Time is always
  *explicit* (an injected :class:`~repro.resilience.clock.Clock` or a
  ``now`` argument) — the shard never reads the wall clock, so expiry
  is deterministic and testable under a
  :class:`~repro.resilience.clock.ManualClock`.
* :class:`ShardedTtlCache` — a fixed set of shards with deterministic
  shard-by-content-hash placement (CRC32 of the key), aggregate
  counters, and mergeable per-shard statistics.

Entries can be *negative*: a cached recent failure (an unloadable
page, a shed outcome) that answers repeats instantly for a short,
separately configured TTL instead of burning a worker on a page that
just failed.  Negative entries expire on ``negative_ttl`` and are
tallied apart from positive hits.

The serving engine's :class:`~repro.serve.coalesce.VerdictMemo` and
the add-on's :class:`~repro.addon.cache.VerdictCache` are both thin
wrappers over this module.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator

from repro.resilience.clock import Clock


@dataclass(frozen=True)
class CacheEntry:
    """One cached value plus its write time and polarity."""

    value: Any
    cached_at: float
    negative: bool = False


def shard_index(key: str, shards: int) -> int:
    """Deterministic shard placement: CRC32 of the key's bytes.

    A pure content hash — no process salt, no insertion order — so the
    same key lands on the same shard in every run and every process.
    """
    return zlib.crc32(key.encode("utf-8")) % shards


class TtlCacheShard:
    """One LRU + TTL cache shard with explicit, injected time.

    Parameters
    ----------
    capacity:
        Maximum entries (LRU eviction beyond it); ``None`` = unbounded.
    ttl:
        Maximum entry age in seconds; reads past it expire the entry
        and count as misses.  ``None`` = entries never expire.  An
        entry aged exactly ``ttl`` is still valid (strict ``>`` test).
    negative_ttl:
        Age bound for *negative* entries; defaults to ``ttl``.
    clock:
        Time source consulted when a call omits ``now``.  TTL
        semantics require one of the two.
    """

    def __init__(
        self,
        capacity: int | None = None,
        ttl: float | None = None,
        negative_ttl: float | None = None,
        clock: Clock | None = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if negative_ttl is not None and negative_ttl <= 0:
            raise ValueError(f"negative_ttl must be > 0, got {negative_ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self.negative_ttl = negative_ttl if negative_ttl is not None else ttl
        self.clock = clock
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.expirations = 0
        self.evictions = 0

    # -- time ----------------------------------------------------------
    def _resolve_now(self, now: float | None) -> float:
        if now is not None:
            return now
        if self.clock is not None:
            return self.clock.now()
        if self.ttl is not None or self.negative_ttl is not None:
            raise ValueError(
                "a TTL cache needs a clock or an explicit `now`"
            )
        return 0.0

    def _expired(self, entry: CacheEntry, now: float) -> bool:
        ttl = self.negative_ttl if entry.negative else self.ttl
        return ttl is not None and now - entry.cached_at > ttl

    # -- operations ----------------------------------------------------
    def get_entry(self, key: str, now: float | None = None) -> CacheEntry | None:
        """The live entry for ``key``, or ``None``.

        Expired entries are removed (counted as expirations) and read
        as misses; live reads refresh LRU recency.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        instant = self._resolve_now(now)
        if self._expired(entry, instant):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if entry.negative:
            self.negative_hits += 1
        return entry

    def get(self, key: str, now: float | None = None) -> Any:
        """The cached value for ``key``, or ``None``."""
        entry = self.get_entry(key, now)
        return entry.value if entry is not None else None

    def put(
        self,
        key: str,
        value: Any,
        now: float | None = None,
        negative: bool = False,
    ) -> None:
        """Insert/refresh an entry, evicting LRU entries beyond capacity."""
        instant = self._resolve_now(now)
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = CacheEntry(
            value=value, cached_at=instant, negative=negative
        )
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one key; True when it was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-safe counter snapshot for reports and spans."""
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }


class ShardedTtlCache:
    """A deterministic fixed-shard cache of :class:`TtlCacheShard`.

    Keys are placed by :func:`shard_index` (CRC32 of the key), so the
    mapping is stable across runs and processes.  With an unbounded or
    TTL-only configuration, sharding is invisible: hit/miss totals are
    identical to a single unsharded cache over the same operations.
    With a bounded ``capacity``, it is split across shards (the first
    ``capacity % shards`` shards take the remainder), so each shard
    evicts independently.

    Parameters match :class:`TtlCacheShard`, plus ``shards``.
    """

    def __init__(
        self,
        capacity: int | None = None,
        ttl: float | None = None,
        negative_ttl: float | None = None,
        clock: Clock | None = None,
        shards: int = 1,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity is not None and capacity < shards:
            raise ValueError(
                f"capacity {capacity} cannot cover {shards} shards "
                "(every shard needs at least one slot)"
            )
        self.shards = shards
        base, remainder = (
            divmod(capacity, shards) if capacity is not None else (None, 0)
        )
        self._shards = [
            TtlCacheShard(
                capacity=(
                    base + (1 if index < remainder else 0)
                    if base is not None
                    else None
                ),
                ttl=ttl,
                negative_ttl=negative_ttl,
                clock=clock,
            )
            for index in range(shards)
        ]

    def _shard_for(self, key: str) -> TtlCacheShard:
        return self._shards[shard_index(key, self.shards)]

    # -- operations (forwarded to the owning shard) --------------------
    def get_entry(self, key: str, now: float | None = None) -> CacheEntry | None:
        """The live entry for ``key`` from its shard, or ``None``."""
        return self._shard_for(key).get_entry(key, now)

    def get(self, key: str, now: float | None = None) -> Any:
        """The cached value for ``key`` from its shard, or ``None``."""
        return self._shard_for(key).get(key, now)

    def put(
        self,
        key: str,
        value: Any,
        now: float | None = None,
        negative: bool = False,
    ) -> None:
        """Insert/refresh an entry in the key's shard."""
        self._shard_for(key).put(key, value, now, negative=negative)

    def invalidate(self, key: str) -> bool:
        """Drop one key from its shard; True when it was present."""
        return self._shard_for(key).invalidate(key)

    def clear(self) -> None:
        """Drop every entry in every shard (counters are kept)."""
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # -- aggregate counters --------------------------------------------
    @property
    def hits(self) -> int:
        """Total hits across shards."""
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        """Total misses across shards."""
        return sum(shard.misses for shard in self._shards)

    @property
    def negative_hits(self) -> int:
        """Total negative-entry hits across shards."""
        return sum(shard.negative_hits for shard in self._shards)

    @property
    def expirations(self) -> int:
        """Total TTL expirations across shards."""
        return sum(shard.expirations for shard in self._shards)

    @property
    def evictions(self) -> int:
        """Total LRU evictions across shards."""
        return sum(shard.evictions for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache, across shards."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def shard_stats(self) -> Iterator[dict]:
        """Per-shard counter snapshots, in shard order."""
        for shard in self._shards:
            yield shard.stats()

    def stats(self) -> dict:
        """Merged counter snapshot; totals equal the shard-wise sums."""
        return {
            "shards": self.shards,
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }
