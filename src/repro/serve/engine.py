"""The overload-robust serving engine.

:class:`ServingEngine` turns the offline pipeline into a request
server and makes its overload behaviour *explicit*: every request
terminates as served, degraded or shed — never dropped, never stuck —
and every defence (admission control, backpressure, coalescing,
deadlines, breakers, drain) is deterministic under an injectable
clock, so chaos scenarios are exact assertions rather than flaky
observations.

The engine is a discrete-event simulator driven synchronously: it
walks the merged timeline of request arrivals, chaos events and work
completions.  Workers are modelled as capacity — up to ``workers``
requests are in flight at once, each occupying its slot for its
*service time* (the page load's simulated duration plus a modelled
per-analysis cost).  The shared :class:`~repro.resilience.clock.Clock`
backs the load-level deadlines and fault stalls; the serving timeline
itself is plain event arithmetic, so reordering-independent and exact.

Request lifecycle::

    arrival ── coalesce? ── admission ── queue ── dispatch ── complete
                  │             │          │         │
                  │           shed       shed      shed
              (follower)  (queue_full, (deadline) (deadline,
                          rate_limited,            upstream)
                           draining)

Deadline propagation: a request's budget is consumed by queue wait,
then threaded as a :class:`~repro.resilience.retry.Deadline` through
the browser's retries and into the pipeline's target-identification
search queries.  No stage starts work the budget cannot cover.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.obs.metrics import NULL_METRICS, AnyMetrics
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.parallel.cache import snapshot_fingerprint
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.errors import DeadlineExceeded, FetchError
from repro.resilience.retry import Deadline
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import InflightTable, VerdictMemo
from repro.serve.loadgen import ChaosEvent
from repro.serve.report import ServingReport
from repro.serve.request import (
    DEGRADED,
    SERVED,
    SHED,
    SHED_DEADLINE,
    SHED_DRAINING,
    SHED_UPSTREAM,
    ServeRequest,
    ServeResponse,
)
from repro.web.browser import PageNotFound, RedirectLoopError

_EPS = 1e-9


class ServingEngine:
    """Serves verdict requests with explicit overload behaviour.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.core.pipeline.KnowYourPhish` (accepting
        ``analyze(loaded, deadline=...)``).
    browser:
        A :class:`~repro.resilience.browser.ResilientBrowser` over the
        (possibly fault-injected) web.
    admission:
        The :class:`AdmissionController` guarding the queue.
    clock:
        Shared time source; defaults to the browser's clock.  With a
        :class:`~repro.resilience.clock.ManualClock` the engine
        advances it along the event timeline, so breaker cooldowns and
        fault stalls live in the same simulated seconds as the load.
    workers:
        Concurrent in-flight capacity (chaos can change it mid-run;
        it never falls below 1).
    analysis_cost:
        Modelled seconds one full analysis occupies a worker.
    memo_cost:
        Modelled seconds for a content-hash memo hit (default: 10% of
        ``analysis_cost``).
    tracer / metrics:
        Optional observability instruments (``serve.*`` spans;
        ``serve_*`` counters, queue-depth gauge, latency histograms).
    """

    def __init__(
        self,
        pipeline,
        browser,
        admission: AdmissionController,
        clock: Clock | None = None,
        workers: int = 4,
        analysis_cost: float = 0.05,
        memo_cost: float | None = None,
        tracer: AnyTracer = NULL_TRACER,
        metrics: AnyMetrics = NULL_METRICS,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if analysis_cost <= 0:
            raise ValueError(
                f"analysis_cost must be positive, got {analysis_cost}"
            )
        self.pipeline = pipeline
        self.browser = browser
        self.admission = admission
        self.clock = clock or getattr(browser, "clock", None) or SystemClock()
        self.workers = workers
        self.analysis_cost = analysis_cost
        self.memo_cost = (
            memo_cost if memo_cost is not None else analysis_cost * 0.1
        )
        self.tracer = tracer
        self.metrics = metrics
        self.inflight_table = InflightTable()
        self.memo = VerdictMemo()
        # per-run state, reset by run()
        self._pending: deque[ServeRequest] = deque()
        self._inflight: list = []
        self._seq = 0
        self._drain_at: float | None = None
        self.max_queue_depth = 0
        self.max_inflight = 0

    # -- chaos hooks ---------------------------------------------------
    def lose_worker(self) -> None:
        """Chaos: one worker dies (capacity never drops below 1)."""
        self.workers = max(1, self.workers - 1)

    def add_worker(self) -> None:
        """Chaos/recovery: one worker joins."""
        self.workers += 1

    # -- main loop -----------------------------------------------------
    def run(
        self,
        requests: list[ServeRequest],
        chaos: list[ChaosEvent] | tuple = (),
        drain_at: float | None = None,
    ) -> ServingReport:
        """Serve ``requests`` to completion and return the report.

        ``chaos`` events fire at their simulated instants.  From
        ``drain_at`` on the engine stops admitting (arrivals shed with
        ``draining``) but finishes everything already admitted — the
        graceful-drain contract: zero admitted requests are lost.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        chaos_queue = deque(sorted(chaos, key=lambda c: (c.time, c.label)))
        arrivals = deque(ordered)
        responses: dict[int, ServeResponse] = {}
        self._pending = deque()
        self._inflight = []
        self._drain_at = drain_at
        self.max_queue_depth = 0
        self.max_inflight = 0

        with self.tracer.span("serve.run", requests=len(ordered)):
            while arrivals:
                self._tick(
                    self._next_time(arrivals, chaos_queue),
                    arrivals, chaos_queue, responses,
                )
            with self.tracer.span(
                "serve.drain",
                queued=len(self._pending),
                inflight=len(self._inflight),
            ):
                while self._pending or self._inflight or chaos_queue:
                    self._tick(
                        self._next_time(arrivals, chaos_queue),
                        arrivals, chaos_queue, responses,
                    )

        ordered_responses = [
            responses[request.request_id] for request in ordered
        ]
        return ServingReport(
            responses=ordered_responses,
            max_queue_depth=self.max_queue_depth,
            max_inflight=self.max_inflight,
            queue_limit=self.admission.queue_limit,
            workers=self.workers,
            coalesced=self.inflight_table.coalesced_total,
            memo_hits=self.memo.hits,
            memo_misses=self.memo.misses,
            admission_stats=dict(self.admission.stats),
        )

    def _next_time(self, arrivals, chaos_queue) -> float:
        candidates = []
        if arrivals:
            candidates.append(arrivals[0].arrival)
        if chaos_queue:
            candidates.append(chaos_queue[0].time)
        if self._inflight:
            candidates.append(self._inflight[0][0])
        if not candidates:  # only queued work left: dispatch immediately
            return self.clock.now()
        return min(candidates)

    def _tick(self, t: float, arrivals, chaos_queue, responses) -> None:
        """Process every event due at ``t``, then fill free workers."""
        advance = getattr(self.clock, "advance", None)
        if advance is not None and t > self.clock.now():
            advance(t - self.clock.now())
        while self._inflight and self._inflight[0][0] <= t + _EPS:
            finish, _seq, request, payload = heapq.heappop(self._inflight)
            self._complete(request, payload, finish, responses)
        while chaos_queue and chaos_queue[0].time <= t + _EPS:
            event = chaos_queue.popleft()
            self.metrics.inc("serve_chaos_total", event=event.label)
            event.action(self)
        while arrivals and arrivals[0].arrival <= t + _EPS:
            self._admit(arrivals.popleft(), responses)
        self._dispatch(t, responses)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        self.max_inflight = max(self.max_inflight, len(self._inflight))
        self.metrics.set_gauge("serve_queue_depth", len(self._pending))

    # -- admission -----------------------------------------------------
    def _admit(self, request: ServeRequest, responses) -> None:
        now = request.arrival
        if self._drain_at is not None and now >= self._drain_at - _EPS:
            self._record(
                self._shed(request, SHED_DRAINING, now), responses
            )
            return
        leader_id = self.inflight_table.leader_for(request.url)
        if leader_id is not None:
            # Same URL already queued or being analyzed: ride along for
            # free — no queue slot, no token, no worker.
            self.inflight_table.follow(leader_id, request)
            self.metrics.inc("serve_coalesced_total")
            return
        decision = self.admission.decide(now, len(self._pending))
        if not decision.admitted:
            self._record(
                self._shed(
                    request, decision.reason, now,
                    retry_after=decision.retry_after,
                ),
                responses,
            )
            return
        self._pending.append(request)
        self.inflight_table.lead(request)

    # -- dispatch ------------------------------------------------------
    def _batchable(self) -> bool:
        """True when this tick's analyses may run as one columnar batch.

        Requires the pipeline to expose ``analyze_batch`` and both the
        engine and pipeline tracers to be disabled: batched analysis
        emits one ``analyze.batch`` span instead of per-request
        ``serve.request``/``analyze`` trees, so traced runs keep the
        per-request path to preserve their span dumps byte for byte.
        """
        return (
            getattr(self.pipeline, "analyze_batch", None) is not None
            and not self.tracer.enabled
            and not getattr(
                getattr(self.pipeline, "tracer", NULL_TRACER),
                "enabled",
                False,
            )
        )

    def _dispatch(self, t: float, responses) -> None:
        # Unbudgeted requests dispatched in one tick can share a single
        # columnar analysis pass: their loads still run serially in pop
        # order (fault stalls advance the shared clock exactly as the
        # per-request path would), and analysis itself neither advances
        # nor reads simulated time, so deferring it to the end of the
        # tick is invisible to the simulation.  Budgeted requests keep
        # the per-request path — their deadline reads interleave with
        # the clock — and flush any staged work first so memo fills and
        # search-engine calls stay in pop order.
        staged: list[tuple] = []
        staged_analyses = 0
        staged_fps: set[str] = set()
        batchable = self._batchable()

        def flush() -> None:
            nonlocal staged_analyses
            if not staged:
                return
            loads = [
                entry[2] for entry in staged if entry[0] == "analyze"
            ]
            verdicts = (
                self.pipeline.analyze_batch(loads) if loads else []
            )
            cursor = 0
            for entry in staged:
                kind, request = entry[0], entry[1]
                if kind == "analyze":
                    _kind, _request, _loaded, load_delta, fp = entry
                    verdict = verdicts[cursor]
                    cursor += 1
                    self.memo.put(fp, verdict)
                    payload = ("verdict", verdict, False)
                    service = load_delta + self.analysis_cost
                elif kind == "dup":
                    _kind, _request, load_delta, fp = entry
                    # An earlier request in this same tick analyzed the
                    # identical content; serially this lookup would hit
                    # the memo it just filled.
                    payload = ("verdict", self.memo.get(fp), True)
                    service = load_delta + self.memo_cost
                else:  # "ready": shed at load time, or a warm memo hit
                    _kind, _request, payload, service = entry
                heapq.heappush(
                    self._inflight,
                    (t + service, self._seq, request, payload),
                )
                self._seq += 1
            staged.clear()
            staged_fps.clear()
            staged_analyses = 0

        while (
            self._pending
            and len(self._inflight) + len(staged) < self.workers
        ):
            request = self._pending.popleft()
            queue_wait = t - request.arrival
            remaining = request.remaining_at(t)
            if remaining is not None and remaining <= 0:
                # The budget died in the queue; do no work for it (or
                # for the followers that were riding on it).
                self._record(
                    self._shed(
                        request, SHED_DEADLINE, t, queue_wait=queue_wait
                    ),
                    responses,
                )
                for follower in self.inflight_table.complete(request):
                    self._record(
                        self._shed(
                            follower, SHED_DEADLINE, t,
                            latency=t - follower.arrival, coalesced=True,
                        ),
                        responses,
                    )
                continue
            if batchable and remaining is None:
                staged.append(self._stage_load(request, staged_fps))
                if staged[-1][0] == "analyze":
                    staged_analyses += 1
                continue
            flush()
            with self.tracer.span(
                "serve.request", url=request.url, id=request.request_id
            ) as span:
                payload, service = self._work(request, remaining)
                span.set(kind=payload[0], service=service)
            finish = t + service
            heapq.heappush(
                self._inflight, (finish, self._seq, request, payload)
            )
            self._seq += 1
        flush()

    def _stage_load(self, request: ServeRequest, staged_fps: set):
        """Load one unbudgeted request now; defer its analysis.

        Mirrors :meth:`_work`'s unbudgeted path step for step — same
        exception handling, same memo probe — but returns a staged
        entry instead of analyzing inline.  Content already staged for
        analysis in this tick is recorded as a ``dup`` (the serial loop
        would hit the memo the earlier request filled) without probing
        the memo now, keeping its hit/miss counters identical.
        """
        load_start = self.clock.now()
        try:
            loaded = self.browser.load(request.url)
        except DeadlineExceeded:
            return (
                "ready", request, ("shed", SHED_DEADLINE),
                self.clock.now() - load_start,
            )
        except (PageNotFound, RedirectLoopError, FetchError):
            return (
                "ready", request, ("shed", SHED_UPSTREAM),
                self.clock.now() - load_start,
            )
        load_delta = self.clock.now() - load_start
        fingerprint = snapshot_fingerprint(loaded.snapshot)
        if fingerprint in staged_fps:
            return ("dup", request, load_delta, fingerprint)
        memoized = self.memo.get(fingerprint)
        if memoized is not None:
            return (
                "ready", request, ("verdict", memoized, True),
                load_delta + self.memo_cost,
            )
        staged_fps.add(fingerprint)
        return ("analyze", request, loaded, load_delta, fingerprint)

    def _work(self, request: ServeRequest, remaining: float | None):
        """Load + analyze one request; return (payload, service_time).

        The service time is the load's simulated duration (measured on
        the shared clock, which fault stalls and retry backoffs
        advance) plus the modelled analysis cost.  The payload is
        either ``("verdict", PageVerdict, from_memo)`` or
        ``("shed", reason)``.
        """
        load_start = self.clock.now()
        deadline = (
            Deadline(remaining, clock=self.clock)
            if remaining is not None
            else None
        )
        try:
            if deadline is not None:
                loaded = self.browser.load(request.url, deadline=deadline)
            else:
                loaded = self.browser.load(request.url)
        except DeadlineExceeded:
            return ("shed", SHED_DEADLINE), self.clock.now() - load_start
        except (PageNotFound, RedirectLoopError, FetchError):
            return ("shed", SHED_UPSTREAM), self.clock.now() - load_start
        load_delta = self.clock.now() - load_start
        left = remaining - load_delta if remaining is not None else None

        fingerprint = snapshot_fingerprint(loaded.snapshot)
        memoized = self.memo.get(fingerprint)
        if memoized is not None:
            if left is not None and left < self.memo_cost:
                return ("shed", SHED_DEADLINE), load_delta
            return ("verdict", memoized, True), load_delta + self.memo_cost
        if left is not None and left < self.analysis_cost:
            # Loading ate the budget; analyzing would finish past the
            # deadline, so the answer would be useless — shed instead.
            return ("shed", SHED_DEADLINE), load_delta
        verdict = self.pipeline.analyze(
            loaded,
            deadline=(
                Deadline(left, clock=self.clock) if left is not None else None
            ),
        )
        self.memo.put(fingerprint, verdict)
        return ("verdict", verdict, False), load_delta + self.analysis_cost

    # -- completion ----------------------------------------------------
    def _complete(self, request, payload, finish: float, responses) -> None:
        followers = self.inflight_table.complete(request)
        kind = payload[0]
        if kind == "shed":
            reason = payload[1]
            self._record(
                self._shed(
                    request, reason, finish,
                    latency=finish - request.arrival,
                ),
                responses,
            )
            for follower in followers:
                self._record(
                    self._shed(
                        follower, SHED_UPSTREAM, finish,
                        latency=finish - follower.arrival, coalesced=True,
                    ),
                    responses,
                )
            return
        verdict = payload[1]
        from_memo = payload[2]
        self._record(
            self._completed(request, verdict, finish, coalesced=from_memo),
            responses,
        )
        for follower in followers:
            latency = finish - follower.arrival
            if follower.budget is not None and latency > follower.budget:
                # The shared result arrived past this follower's own
                # deadline; a late verdict is a broken promise.
                self._record(
                    self._shed(
                        follower, SHED_DEADLINE, finish,
                        latency=latency, coalesced=True,
                    ),
                    responses,
                )
                continue
            self._record(
                self._completed(follower, verdict, finish, coalesced=True),
                responses,
            )

    def _completed(
        self, request, verdict, finish: float, coalesced: bool
    ) -> ServeResponse:
        outcome = DEGRADED if verdict.degraded else SERVED
        return ServeResponse(
            request_id=request.request_id,
            url=request.url,
            outcome=outcome,
            finished=finish,
            latency=finish - request.arrival,
            verdict=verdict.verdict,
            confidence=verdict.confidence,
            targets=tuple(verdict.targets),
            degradations=tuple(verdict.degradations),
            coalesced=coalesced,
        )

    def _shed(
        self,
        request: ServeRequest,
        reason: str,
        now: float,
        retry_after: float | None = None,
        queue_wait: float = 0.0,
        latency: float = 0.0,
        coalesced: bool = False,
    ) -> ServeResponse:
        return ServeResponse(
            request_id=request.request_id,
            url=request.url,
            outcome=SHED,
            finished=now,
            latency=latency,
            shed_reason=reason,
            retry_after=retry_after,
            queue_wait=queue_wait,
            coalesced=coalesced,
        )

    def _record(self, response: ServeResponse, responses) -> None:
        if response.request_id in responses:
            raise AssertionError(
                f"request {response.request_id} terminated twice"
            )
        responses[response.request_id] = response
        self.metrics.inc("serve_requests_total", outcome=response.outcome)
        if response.shed:
            self.metrics.inc("serve_shed_total", reason=response.shed_reason)
        else:
            self.metrics.observe(
                "serve_latency_seconds",
                response.latency,
                outcome=response.outcome,
            )
