"""The overload-robust serving engine.

:class:`ServingEngine` turns the offline pipeline into a request
server and makes its overload behaviour *explicit*: every request
terminates as served, degraded or shed — never dropped, never stuck —
and every defence (admission control, backpressure, coalescing,
deadlines, breakers, drain) is deterministic under an injectable
clock, so chaos scenarios are exact assertions rather than flaky
observations.

The engine is a discrete-event simulator driven synchronously: it
walks the merged timeline of request arrivals, chaos events and work
completions.  Workers are modelled as capacity — up to ``workers``
requests are in flight at once, each occupying its slot for its
*service time* (the page load's simulated duration plus a modelled
per-analysis cost).  The shared :class:`~repro.resilience.clock.Clock`
backs the load-level deadlines and fault stalls; the serving timeline
itself is plain event arithmetic, so reordering-independent and exact.

Request lifecycle (the **triage ladder**)::

    arrival ─ triage? ─ negative? ─ coalesce? ─ admission ─ queue ─ dispatch
                │           │           │           │         │        │
             tier-0       shed          │         shed      shed     shed
             verdict   (upstream)   (follower)

A configured :class:`~repro.serve.triage.TriageModel` resolves
high-confidence URLs at tier 0 — a URL-only score, no page load, no
queue slot, no token, no worker — and only *escalates* the uncertain
band into the classic path, which stays byte-identical to an
untriaged engine.  An optional negative cache (URL-keyed, short TTL)
answers repeats of recently unloadable pages instantly instead of
burning a worker on a page that just failed.

Deadline propagation: a request's budget is consumed by queue wait,
then threaded as a :class:`~repro.resilience.retry.Deadline` through
the browser's retries and into the pipeline's target-identification
search queries.  No stage starts work the budget cannot cover.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.obs.metrics import NULL_METRICS, AnyMetrics
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.parallel.cache import snapshot_fingerprint
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.errors import DeadlineExceeded, FetchError
from repro.resilience.retry import Deadline
from repro.serve.admission import AdmissionController
from repro.serve.cache import ShardedTtlCache
from repro.serve.coalesce import InflightTable, VerdictMemo
from repro.serve.loadgen import ChaosEvent
from repro.serve.report import ServingReport
from repro.serve.request import (
    DEGRADED,
    SERVED,
    SHED,
    SHED_DEADLINE,
    SHED_DRAINING,
    SHED_UPSTREAM,
    TIER_FULL,
    TIER_NEGATIVE,
    TIER_TRIAGE,
    ServeRequest,
    ServeResponse,
)
from repro.serve.triage import TriageModel
from repro.web.browser import PageNotFound, RedirectLoopError

_EPS = 1e-9


class ServingEngine:
    """Serves verdict requests with explicit overload behaviour.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.core.pipeline.KnowYourPhish` (accepting
        ``analyze(loaded, deadline=...)``).
    browser:
        A :class:`~repro.resilience.browser.ResilientBrowser` over the
        (possibly fault-injected) web.
    admission:
        The :class:`AdmissionController` guarding the queue.
    clock:
        Shared time source; defaults to the browser's clock.  With a
        :class:`~repro.resilience.clock.ManualClock` the engine
        advances it along the event timeline, so breaker cooldowns and
        fault stalls live in the same simulated seconds as the load.
    workers:
        Concurrent in-flight capacity (chaos can change it mid-run;
        it never falls below 1).
    analysis_cost:
        Modelled seconds one full analysis occupies a worker.
    memo_cost:
        Modelled seconds for a content-hash memo hit (default: 10% of
        ``analysis_cost``).
    triage:
        Optional :class:`~repro.serve.triage.TriageModel`.  When set,
        arrivals are scored URL-only first; confident verdicts resolve
        at tier 0 (``triage_cost`` seconds, no queue slot, no token,
        no worker) and only the uncertain band escalates into the
        classic path, which stays byte-identical to an untriaged run.
    triage_cost:
        Modelled seconds for one tier-0 decision (default: 1% of
        ``analysis_cost`` — a hashed dot product vs a page analysis).
    negative_ttl:
        When set, recently *unloadable* URLs (upstream-failure sheds)
        are negative-cached for this many simulated seconds and
        repeats are refused instantly without occupying a worker.
        ``None`` (default) disables negative caching.
    memo_capacity / memo_ttl / memo_shards:
        Sizing of the sharded content-hash verdict memo.  Defaults
        (unbounded, no TTL) reproduce the historical run-scoped memo
        exactly; long-running deployments bound both.
    tracer / metrics:
        Optional observability instruments (``serve.*`` spans incl.
        ``serve.triage``, per-shard ``cache.shard`` spans; ``serve_*``
        counters, queue-depth gauge, per-tier latency histograms).
    quality:
        Optional :class:`~repro.obs.quality.QualityMonitor`.  Every
        terminal response, memo lookup and tier-0 escalation outcome
        is tapped read-only (the monitor carries its own tracer and
        metrics), and the monitor is finalized on drain — so SLO burn
        rates, drift windows and the flight recorder see live serving
        traffic while verdicts and the engine's own span dumps stay
        byte-identical to an unmonitored run.
    """

    def __init__(
        self,
        pipeline,
        browser,
        admission: AdmissionController,
        clock: Clock | None = None,
        workers: int = 4,
        analysis_cost: float = 0.05,
        memo_cost: float | None = None,
        triage: TriageModel | None = None,
        triage_cost: float | None = None,
        negative_ttl: float | None = None,
        memo_capacity: int | None = None,
        memo_ttl: float | None = None,
        memo_shards: int = 4,
        tracer: AnyTracer = NULL_TRACER,
        metrics: AnyMetrics = NULL_METRICS,
        quality=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if analysis_cost <= 0:
            raise ValueError(
                f"analysis_cost must be positive, got {analysis_cost}"
            )
        if triage_cost is not None and triage_cost < 0:
            raise ValueError(
                f"triage_cost must be >= 0, got {triage_cost}"
            )
        self.pipeline = pipeline
        self.browser = browser
        self.admission = admission
        self.clock = clock or getattr(browser, "clock", None) or SystemClock()
        self.workers = workers
        self.analysis_cost = analysis_cost
        self.memo_cost = (
            memo_cost if memo_cost is not None else analysis_cost * 0.1
        )
        self.triage = triage
        self.triage_cost = (
            triage_cost if triage_cost is not None else analysis_cost * 0.01
        )
        self.tracer = tracer
        self.metrics = metrics
        self.quality = quality
        self.inflight_table = InflightTable()
        self.memo = VerdictMemo(
            capacity=memo_capacity,
            ttl=memo_ttl,
            clock=self.clock,
            shards=memo_shards,
        )
        self.negative = (
            ShardedTtlCache(
                ttl=negative_ttl, clock=self.clock, shards=memo_shards
            )
            if negative_ttl is not None
            else None
        )
        # per-run state, reset by run()
        self._pending: deque[ServeRequest] = deque()
        self._inflight: list = []
        self._seq = 0
        self._drain_at: float | None = None
        self.max_queue_depth = 0
        self.max_inflight = 0
        # quality-tap bookkeeping (only populated when a monitor is
        # armed): request budgets for deadline-slack recording, and
        # triage scores of escalated requests for mismatch tracking.
        self._budgets: dict[int, float | None] = {}
        self._triage_scores: dict[int, float] = {}

    # -- chaos hooks ---------------------------------------------------
    def lose_worker(self) -> None:
        """Chaos: one worker dies (capacity never drops below 1)."""
        self.workers = max(1, self.workers - 1)

    def add_worker(self) -> None:
        """Chaos/recovery: one worker joins."""
        self.workers += 1

    # -- main loop -----------------------------------------------------
    def run(
        self,
        requests: list[ServeRequest],
        chaos: list[ChaosEvent] | tuple = (),
        drain_at: float | None = None,
    ) -> ServingReport:
        """Serve ``requests`` to completion and return the report.

        ``chaos`` events fire at their simulated instants.  From
        ``drain_at`` on the engine stops admitting (arrivals shed with
        ``draining``) but finishes everything already admitted — the
        graceful-drain contract: zero admitted requests are lost.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        chaos_queue = deque(sorted(chaos, key=lambda c: (c.time, c.label)))
        arrivals = deque(ordered)
        responses: dict[int, ServeResponse] = {}
        self._pending = deque()
        self._inflight = []
        self._drain_at = drain_at
        self.max_queue_depth = 0
        self.max_inflight = 0
        self._budgets = {}
        self._triage_scores = {}

        with self.tracer.span("serve.run", requests=len(ordered)):
            while arrivals:
                self._tick(
                    self._next_time(arrivals, chaos_queue),
                    arrivals, chaos_queue, responses,
                )
            with self.tracer.span(
                "serve.drain",
                queued=len(self._pending),
                inflight=len(self._inflight),
            ):
                while self._pending or self._inflight or chaos_queue:
                    self._tick(
                        self._next_time(arrivals, chaos_queue),
                        arrivals, chaos_queue, responses,
                    )
            for index, stats in enumerate(self.memo.shard_stats()):
                with self.tracer.span(
                    "cache.shard", cache="memo", index=index, **stats
                ):
                    pass

        if self.quality is not None:
            # Final SLO + drift pass on drain, so alerts pending inside
            # an evaluation interval still surface in the artifact.
            self.quality.finish(now=self.clock.now())

        ordered_responses = [
            responses[request.request_id] for request in ordered
        ]
        cache_stats = {"memo": self.memo.stats()}
        if self.negative is not None:
            cache_stats["negative"] = self.negative.stats()
        return ServingReport(
            responses=ordered_responses,
            max_queue_depth=self.max_queue_depth,
            max_inflight=self.max_inflight,
            queue_limit=self.admission.queue_limit,
            workers=self.workers,
            coalesced=self.inflight_table.coalesced_total,
            memo_hits=self.memo.hits,
            memo_misses=self.memo.misses,
            admission_stats=dict(self.admission.stats),
            triage_enabled=self.triage is not None,
            negative_cache_enabled=self.negative is not None,
            cache_stats=cache_stats,
        )

    def _next_time(self, arrivals, chaos_queue) -> float:
        candidates = []
        if arrivals:
            candidates.append(arrivals[0].arrival)
        if chaos_queue:
            candidates.append(chaos_queue[0].time)
        if self._inflight:
            candidates.append(self._inflight[0][0])
        if not candidates:  # only queued work left: dispatch immediately
            return self.clock.now()
        return min(candidates)

    def _tick(self, t: float, arrivals, chaos_queue, responses) -> None:
        """Process every event due at ``t``, then fill free workers."""
        advance = getattr(self.clock, "advance", None)
        if advance is not None and t > self.clock.now():
            advance(t - self.clock.now())
        while self._inflight and self._inflight[0][0] <= t + _EPS:
            finish, _seq, request, payload = heapq.heappop(self._inflight)
            self._complete(request, payload, finish, responses)
        while chaos_queue and chaos_queue[0].time <= t + _EPS:
            event = chaos_queue.popleft()
            self.metrics.inc("serve_chaos_total", event=event.label)
            event.action(self)
        while arrivals and arrivals[0].arrival <= t + _EPS:
            self._admit(arrivals.popleft(), responses)
        self._dispatch(t, responses)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        self.max_inflight = max(self.max_inflight, len(self._inflight))
        self.metrics.set_gauge("serve_queue_depth", len(self._pending))

    # -- admission -----------------------------------------------------
    def _admit(self, request: ServeRequest, responses) -> None:
        now = request.arrival
        if self.quality is not None:
            self._budgets[request.request_id] = request.budget
        if self._drain_at is not None and now >= self._drain_at - _EPS:
            self._record(
                self._shed(request, SHED_DRAINING, now), responses
            )
            return
        if self.triage is not None and self._triage(request, now, responses):
            return
        if self.negative is not None:
            reason = self.negative.get(request.url, now=now)
            if reason is not None:
                self.metrics.inc("serve_negative_hits_total")
                self._record(
                    self._shed(request, reason, now, tier=TIER_NEGATIVE),
                    responses,
                )
                return
        leader_id = self.inflight_table.leader_for(request.url)
        if leader_id is not None:
            # Same URL already queued or being analyzed: ride along for
            # free — no queue slot, no token, no worker.
            self.inflight_table.follow(leader_id, request)
            self.metrics.inc("serve_coalesced_total")
            return
        decision = self.admission.decide(now, len(self._pending))
        if not decision.admitted:
            self._record(
                self._shed(
                    request, decision.reason, now,
                    retry_after=decision.retry_after,
                ),
                responses,
            )
            return
        self._pending.append(request)
        self.inflight_table.lead(request)

    def _triage(self, request: ServeRequest, now: float, responses) -> bool:
        """Tier-0 URL-only resolution; True when the request terminated.

        A confident decision terminates the request after
        ``triage_cost`` simulated seconds without consuming a queue
        slot, a token or a worker; ``escalate`` falls through to the
        classic path untouched.
        """
        with self.tracer.span(
            "serve.triage", url=request.url, id=request.request_id
        ) as span:
            decision = self.triage.decide(request.url)
            span.set(action=decision.action, score=decision.score)
        self.metrics.inc("serve_triage_total", action=decision.action)
        if not decision.resolved:
            if self.quality is not None:
                # Remember the tier-0 lean so the full verdict can be
                # checked against it at completion (popped in _record).
                self._triage_scores[request.request_id] = decision.score
            return False
        if request.budget is not None and self.triage_cost > request.budget:
            self._record(
                self._shed(
                    request, SHED_DEADLINE, now + request.budget,
                    latency=request.budget, tier=TIER_TRIAGE,
                ),
                responses,
            )
            return True
        self._record(
            ServeResponse(
                request_id=request.request_id,
                url=request.url,
                outcome=SERVED,
                finished=now + self.triage_cost,
                latency=self.triage_cost,
                verdict=decision.action,
                confidence=decision.score,
                targets=(),
                tier=TIER_TRIAGE,
            ),
            responses,
        )
        return True

    # -- dispatch ------------------------------------------------------
    def _batchable(self) -> bool:
        """True when this tick's analyses may run as one columnar batch.

        Requires the pipeline to expose ``analyze_batch`` and both the
        engine and pipeline tracers to be disabled: batched analysis
        emits one ``analyze.batch`` span instead of per-request
        ``serve.request``/``analyze`` trees, so traced runs keep the
        per-request path to preserve their span dumps byte for byte.
        """
        return (
            getattr(self.pipeline, "analyze_batch", None) is not None
            and not self.tracer.enabled
            and not getattr(
                getattr(self.pipeline, "tracer", NULL_TRACER),
                "enabled",
                False,
            )
        )

    def _dispatch(self, t: float, responses) -> None:
        # Unbudgeted requests dispatched in one tick can share a single
        # columnar analysis pass: their loads still run serially in pop
        # order (fault stalls advance the shared clock exactly as the
        # per-request path would), and analysis itself neither advances
        # nor reads simulated time, so deferring it to the end of the
        # tick is invisible to the simulation.  Budgeted requests keep
        # the per-request path — their deadline reads interleave with
        # the clock — and flush any staged work first so memo fills and
        # search-engine calls stay in pop order.
        staged: list[tuple] = []
        staged_analyses = 0
        staged_fps: set[str] = set()
        batchable = self._batchable()

        def flush() -> None:
            nonlocal staged_analyses
            if not staged:
                return
            loads = [
                entry[2] for entry in staged if entry[0] == "analyze"
            ]
            verdicts = (
                self.pipeline.analyze_batch(loads) if loads else []
            )
            cursor = 0
            for entry in staged:
                kind, request = entry[0], entry[1]
                if kind == "analyze":
                    _kind, _request, _loaded, load_delta, fp = entry
                    verdict = verdicts[cursor]
                    cursor += 1
                    self.memo.put(fp, verdict)
                    payload = ("verdict", verdict, False)
                    service = load_delta + self.analysis_cost
                elif kind == "dup":
                    _kind, _request, load_delta, fp = entry
                    # An earlier request in this same tick analyzed the
                    # identical content; serially this lookup would hit
                    # the memo it just filled.
                    payload = ("verdict", self.memo.get(fp), True)
                    service = load_delta + self.memo_cost
                else:  # "ready": shed at load time, or a warm memo hit
                    _kind, _request, payload, service = entry
                heapq.heappush(
                    self._inflight,
                    (t + service, self._seq, request, payload),
                )
                self._seq += 1
            staged.clear()
            staged_fps.clear()
            staged_analyses = 0

        while (
            self._pending
            and len(self._inflight) + len(staged) < self.workers
        ):
            request = self._pending.popleft()
            queue_wait = t - request.arrival
            remaining = request.remaining_at(t)
            if remaining is not None and remaining <= 0:
                # The budget died in the queue; do no work for it (or
                # for the followers that were riding on it).
                self._record(
                    self._shed(
                        request, SHED_DEADLINE, t, queue_wait=queue_wait
                    ),
                    responses,
                )
                for follower in self.inflight_table.complete(request):
                    self._record(
                        self._shed(
                            follower, SHED_DEADLINE, t,
                            latency=t - follower.arrival, coalesced=True,
                        ),
                        responses,
                    )
                continue
            if batchable and remaining is None:
                staged.append(self._stage_load(request, staged_fps))
                if staged[-1][0] == "analyze":
                    staged_analyses += 1
                continue
            flush()
            with self.tracer.span(
                "serve.request", url=request.url, id=request.request_id
            ) as span:
                payload, service = self._work(request, remaining)
                span.set(kind=payload[0], service=service)
            finish = t + service
            heapq.heappush(
                self._inflight, (finish, self._seq, request, payload)
            )
            self._seq += 1
        flush()

    def _stage_load(self, request: ServeRequest, staged_fps: set):
        """Load one unbudgeted request now; defer its analysis.

        Mirrors :meth:`_work`'s unbudgeted path step for step — same
        exception handling, same memo probe — but returns a staged
        entry instead of analyzing inline.  Content already staged for
        analysis in this tick is recorded as a ``dup`` (the serial loop
        would hit the memo the earlier request filled) without probing
        the memo now, keeping its hit/miss counters identical.
        """
        load_start = self.clock.now()
        try:
            loaded = self.browser.load(request.url)
        except DeadlineExceeded:
            return (
                "ready", request, ("shed", SHED_DEADLINE),
                self.clock.now() - load_start,
            )
        except (PageNotFound, RedirectLoopError, FetchError):
            return (
                "ready", request, ("shed", SHED_UPSTREAM),
                self.clock.now() - load_start,
            )
        load_delta = self.clock.now() - load_start
        fingerprint = snapshot_fingerprint(loaded.snapshot)
        if fingerprint in staged_fps:
            if self.quality is not None:
                # Serially this lookup would hit the memo the earlier
                # staged request filled: record it as the hit it is.
                self.quality.observe_cache(
                    "memo", True, now=self.clock.now()
                )
            return ("dup", request, load_delta, fingerprint)
        memoized = self.memo.get(fingerprint)
        if self.quality is not None:
            self.quality.observe_cache(
                "memo", memoized is not None, now=self.clock.now()
            )
        if memoized is not None:
            return (
                "ready", request, ("verdict", memoized, True),
                load_delta + self.memo_cost,
            )
        staged_fps.add(fingerprint)
        return ("analyze", request, loaded, load_delta, fingerprint)

    def _work(self, request: ServeRequest, remaining: float | None):
        """Load + analyze one request; return (payload, service_time).

        The service time is the load's simulated duration (measured on
        the shared clock, which fault stalls and retry backoffs
        advance) plus the modelled analysis cost.  The payload is
        either ``("verdict", PageVerdict, from_memo)`` or
        ``("shed", reason)``.
        """
        load_start = self.clock.now()
        deadline = (
            Deadline(remaining, clock=self.clock)
            if remaining is not None
            else None
        )
        try:
            if deadline is not None:
                loaded = self.browser.load(request.url, deadline=deadline)
            else:
                loaded = self.browser.load(request.url)
        except DeadlineExceeded:
            return ("shed", SHED_DEADLINE), self.clock.now() - load_start
        except (PageNotFound, RedirectLoopError, FetchError):
            return ("shed", SHED_UPSTREAM), self.clock.now() - load_start
        load_delta = self.clock.now() - load_start
        left = remaining - load_delta if remaining is not None else None

        fingerprint = snapshot_fingerprint(loaded.snapshot)
        memoized = self.memo.get(fingerprint)
        if self.quality is not None:
            self.quality.observe_cache(
                "memo", memoized is not None, now=self.clock.now()
            )
        if memoized is not None:
            if left is not None and left < self.memo_cost:
                return ("shed", SHED_DEADLINE), load_delta
            return ("verdict", memoized, True), load_delta + self.memo_cost
        if left is not None and left < self.analysis_cost:
            # Loading ate the budget; analyzing would finish past the
            # deadline, so the answer would be useless — shed instead.
            return ("shed", SHED_DEADLINE), load_delta
        verdict = self.pipeline.analyze(
            loaded,
            deadline=(
                Deadline(left, clock=self.clock) if left is not None else None
            ),
        )
        self.memo.put(fingerprint, verdict)
        return ("verdict", verdict, False), load_delta + self.analysis_cost

    # -- completion ----------------------------------------------------
    def _complete(self, request, payload, finish: float, responses) -> None:
        followers = self.inflight_table.complete(request)
        kind = payload[0]
        if kind == "shed":
            reason = payload[1]
            if self.negative is not None and reason == SHED_UPSTREAM:
                # Remember the unloadable page briefly: repeats within
                # the negative TTL are refused at arrival, saving the
                # doomed load and the worker it would occupy.
                self.negative.put(
                    request.url, reason, now=finish, negative=True
                )
            self._record(
                self._shed(
                    request, reason, finish,
                    latency=finish - request.arrival,
                ),
                responses,
            )
            for follower in followers:
                self._record(
                    self._shed(
                        follower, SHED_UPSTREAM, finish,
                        latency=finish - follower.arrival, coalesced=True,
                    ),
                    responses,
                )
            return
        verdict = payload[1]
        from_memo = payload[2]
        self._record(
            self._completed(request, verdict, finish, coalesced=from_memo),
            responses,
        )
        for follower in followers:
            latency = finish - follower.arrival
            if follower.budget is not None and latency > follower.budget:
                # The shared result arrived past this follower's own
                # deadline; a late verdict is a broken promise.
                self._record(
                    self._shed(
                        follower, SHED_DEADLINE, finish,
                        latency=latency, coalesced=True,
                    ),
                    responses,
                )
                continue
            self._record(
                self._completed(follower, verdict, finish, coalesced=True),
                responses,
            )

    def _completed(
        self, request, verdict, finish: float, coalesced: bool
    ) -> ServeResponse:
        outcome = DEGRADED if verdict.degraded else SERVED
        return ServeResponse(
            request_id=request.request_id,
            url=request.url,
            outcome=outcome,
            finished=finish,
            latency=finish - request.arrival,
            verdict=verdict.verdict,
            confidence=verdict.confidence,
            targets=tuple(verdict.targets),
            degradations=tuple(verdict.degradations),
            coalesced=coalesced,
        )

    def _shed(
        self,
        request: ServeRequest,
        reason: str,
        now: float,
        retry_after: float | None = None,
        queue_wait: float = 0.0,
        latency: float = 0.0,
        coalesced: bool = False,
        tier: str = TIER_FULL,
    ) -> ServeResponse:
        return ServeResponse(
            request_id=request.request_id,
            url=request.url,
            outcome=SHED,
            finished=now,
            latency=latency,
            shed_reason=reason,
            retry_after=retry_after,
            queue_wait=queue_wait,
            coalesced=coalesced,
            tier=tier,
        )

    def _record(self, response: ServeResponse, responses) -> None:
        if response.request_id in responses:
            raise AssertionError(
                f"request {response.request_id} terminated twice"
            )
        responses[response.request_id] = response
        self.metrics.inc("serve_requests_total", outcome=response.outcome)
        self.metrics.inc("serve_tier_total", tier=response.tier)
        if self.quality is not None:
            triage_score = self._triage_scores.pop(
                response.request_id, None
            )
            if (
                triage_score is not None
                and response.completed
                and response.tier == TIER_FULL
            ):
                # Escalation mismatch: the tier-0 lean (score >= 0.5
                # reads "phish-leaning") disagreed with the full
                # pipeline's blocking verdict.
                lean_phish = triage_score >= 0.5
                blocked = response.verdict in ("phish", "suspicious")
                self.quality.observe_escalation(
                    lean_phish != blocked, now=response.finished
                )
            self.quality.observe_response(
                response,
                budget=self._budgets.pop(response.request_id, None),
                now=response.finished,
            )
        if response.shed:
            self.metrics.inc("serve_shed_total", reason=response.shed_reason)
        else:
            self.metrics.observe(
                "serve_latency_seconds",
                response.latency,
                outcome=response.outcome,
            )
            self.metrics.observe(
                "serve_tier_latency_seconds",
                response.latency,
                tier=response.tier,
            )
