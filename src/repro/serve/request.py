"""Request/response records for the serving engine.

A :class:`ServeRequest` is one client asking for a verdict on one URL
at a point in simulated time, carrying its own deadline budget.  Every
request terminates in exactly one :class:`ServeResponse` — served,
degraded or shed — so an overloaded engine never silently drops work;
shed responses carry the structured reason and a ``retry_after`` hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SERVED = "served"
DEGRADED = "degraded"
SHED = "shed"

#: Structured shed reasons (the ``reason`` label on ``serve_shed_total``).
SHED_QUEUE_FULL = "queue_full"        # bounded queue at capacity
SHED_RATE_LIMITED = "rate_limited"    # token bucket empty (or throttled)
SHED_DEADLINE = "deadline"            # budget exhausted before completion
SHED_UPSTREAM = "upstream_failure"    # page unloadable within the budget
SHED_DRAINING = "draining"            # engine stopped admitting

#: Serving tiers (the ``tier`` label on ``serve_tier_total`` and the
#: per-tier latency percentiles in the report).
TIER_FULL = "full"            # full pipeline: page load + 212 features
TIER_TRIAGE = "tier0"         # URL-only triage verdict, no page load
TIER_NEGATIVE = "negative"    # answered from the negative cache


@dataclass(frozen=True)
class ServeRequest:
    """One client request: a URL, an arrival instant, a time budget."""

    request_id: int
    url: str
    arrival: float
    budget: float | None = None    # seconds allowed end to end; None = ∞

    def remaining_at(self, now: float) -> float | None:
        """Budget seconds left at simulated instant ``now``."""
        if self.budget is None:
            return None
        return self.budget - (now - self.arrival)


@dataclass
class ServeResponse:
    """The terminal outcome of one request.

    ``outcome`` is ``"served"`` (full-fidelity verdict), ``"degraded"``
    (verdict produced with reduced-fidelity inputs — search outage,
    exhausted deadline, partial snapshot) or ``"shed"`` (no verdict;
    ``shed_reason`` says why and ``retry_after`` hints when to retry).
    """

    request_id: int
    url: str
    outcome: str
    finished: float
    latency: float
    verdict: str | None = None
    confidence: float | None = None
    targets: tuple[str, ...] = ()
    degradations: tuple[str, ...] = ()
    shed_reason: str | None = None
    retry_after: float | None = None
    coalesced: bool = False
    queue_wait: float = 0.0
    tier: str = TIER_FULL
    extra: dict = field(default_factory=dict)

    @property
    def shed(self) -> bool:
        """True when the request was refused without a verdict."""
        return self.outcome == SHED

    @property
    def completed(self) -> bool:
        """True when the request got a verdict (served or degraded)."""
        return self.outcome in (SERVED, DEGRADED)
