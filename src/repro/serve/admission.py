"""Admission control: token-bucket rate limiting with backpressure.

The engine asks the :class:`AdmissionController` one question per
arriving request: *admit, or shed with which reason?*  Two mechanisms
answer it:

* a **bounded queue** — depth at the limit is an immediate
  ``queue_full`` shed; an unbounded queue under overload is just a
  latency bomb with extra steps;
* a **token bucket** — sustained arrival rate above the refill rate
  drains the bucket and sheds ``rate_limited`` with a ``retry_after``
  computed from the refill rate, so well-behaved clients back off to
  exactly the sustainable rate.

**Backpressure** links the two: once queue depth crosses the high
watermark the controller *throttles* — each admission costs more
tokens, shrinking the effective admitted rate by ``shed_factor`` —
and only un-throttles once depth falls back to the low watermark
(hysteresis, so the admitted rate does not flap at the boundary).
The queue therefore starts refusing load *before* it overflows.

Everything is driven by explicit ``now`` instants from the engine's
simulated timeline: no wall clock, fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.request import SHED_QUEUE_FULL, SHED_RATE_LIMITED


class TokenBucket:
    """A classic token bucket over an explicit timeline.

    Parameters
    ----------
    rate:
        Tokens added per simulated second (the sustained admit rate).
    capacity:
        Maximum tokens held (the tolerated burst size).
    """

    def __init__(self, rate: float, capacity: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._updated = 0.0

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.capacity, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens at instant ``now`` if available."""
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def retry_after(self, now: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accumulated."""
        self._refill(now)
        deficit = cost - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        """Tokens currently held (as of the last refill)."""
        return self._tokens


@dataclass
class AdmissionDecision:
    """The controller's answer for one arrival."""

    admitted: bool
    reason: str | None = None       # a SHED_* constant when refused
    retry_after: float | None = None


class AdmissionController:
    """Bounded queue + token bucket + watermark backpressure.

    Parameters
    ----------
    bucket:
        The token bucket bounding the sustained admitted rate.
    queue_limit:
        Hard queue-depth bound; arrivals at the bound shed
        ``queue_full``.
    high_watermark / low_watermark:
        Queue depths at which throttling engages / releases.  Both
        default relative to ``queue_limit`` (75% / 25%).
    shed_factor:
        Fraction of the bucket rate still admitted while throttled
        (0.5 = every admission costs two tokens).
    """

    def __init__(
        self,
        bucket: TokenBucket,
        queue_limit: int,
        high_watermark: int | None = None,
        low_watermark: int | None = None,
        shed_factor: float = 0.5,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if not 0 < shed_factor <= 1:
            raise ValueError(
                f"shed_factor must be in (0, 1], got {shed_factor}"
            )
        self.bucket = bucket
        self.queue_limit = queue_limit
        self.high_watermark = (
            high_watermark if high_watermark is not None
            else max(1, (queue_limit * 3) // 4)
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None
            else max(0, queue_limit // 4)
        )
        if self.low_watermark >= self.high_watermark:
            raise ValueError(
                f"low_watermark ({self.low_watermark}) must be below "
                f"high_watermark ({self.high_watermark})"
            )
        self.shed_factor = shed_factor
        self.throttled = False
        #: lifetime counters, exposed for reports
        self.stats = {"admitted": 0, "shed_queue": 0, "shed_rate": 0,
                      "throttle_engaged": 0}

    def decide(self, now: float, queue_depth: int) -> AdmissionDecision:
        """Admit or shed one arrival at instant ``now``."""
        was_throttled = self.throttled
        if queue_depth >= self.high_watermark:
            self.throttled = True
        elif queue_depth <= self.low_watermark:
            self.throttled = False
        if self.throttled and not was_throttled:
            self.stats["throttle_engaged"] += 1

        if queue_depth >= self.queue_limit:
            self.stats["shed_queue"] += 1
            # The queue must first drain below the limit; the earliest
            # useful retry is one service interval away.
            return AdmissionDecision(
                False, SHED_QUEUE_FULL, retry_after=1.0 / self.bucket.rate
            )
        cost = 1.0 / self.shed_factor if self.throttled else 1.0
        if not self.bucket.try_take(now, cost):
            self.stats["shed_rate"] += 1
            return AdmissionDecision(
                False,
                SHED_RATE_LIMITED,
                retry_after=self.bucket.retry_after(now, cost),
            )
        self.stats["admitted"] += 1
        return AdmissionDecision(True)
