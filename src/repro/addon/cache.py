"""Verdict cache for the client-side add-on.

Phishing campaigns have a median lifetime of a few hours [10 in the
paper], so a verdict must not outlive the page it describes.  The cache
is keyed by full URL, bounded in size (LRU eviction) and bounded in age
(TTL expiry).  Time is injected, never read from the wall clock, so
behaviour is deterministic and testable.

The storage engine is the serving tier's
:class:`~repro.serve.cache.ShardedTtlCache` (a single shard here: the
add-on runs in one browser process, so a strict whole-cache LRU order
is the right eviction policy); this class only keeps the add-on's
historical URL-keyed API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PageVerdict
from repro.serve.cache import ShardedTtlCache


@dataclass(frozen=True)
class CachedVerdict:
    """A verdict plus the time it was cached (public record type)."""

    verdict: PageVerdict
    cached_at: float


class VerdictCache:
    """LRU + TTL cache of page verdicts.

    Parameters
    ----------
    max_entries:
        Maximum cached URLs; least-recently-used entries are evicted.
    ttl:
        Maximum verdict age in seconds; stale entries read as misses.
    """

    def __init__(self, max_entries: int = 1000, ttl: float = 3600.0):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._cache = ShardedTtlCache(
            capacity=max_entries, ttl=ttl, shards=1
        )

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, url: str, now: float) -> PageVerdict | None:
        """Return the cached verdict for ``url`` or ``None``.

        Expired entries are removed and counted as misses.
        """
        verdict = self._cache.get(url, now=now)
        return verdict if verdict is not None else None

    def put(self, url: str, verdict: PageVerdict, now: float) -> None:
        """Cache a verdict, evicting the oldest entry when full."""
        self._cache.put(url, verdict, now=now)

    def invalidate(self, url: str) -> bool:
        """Drop one URL from the cache; True when it was present."""
        return self._cache.invalidate(url)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        self._cache.clear()

    @property
    def hits(self) -> int:
        """Lookups served from cache."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing (or only stale entries)."""
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self._cache.hit_rate

    def stats(self) -> dict:
        """Merged counter snapshot (size, hits, misses, evictions...)."""
        return self._cache.stats()
