"""Verdict cache for the client-side add-on.

Phishing campaigns have a median lifetime of a few hours [10 in the
paper], so a verdict must not outlive the page it describes.  The cache
is keyed by full URL, bounded in size (LRU eviction) and bounded in age
(TTL expiry).  Time is injected, never read from the wall clock, so
behaviour is deterministic and testable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.pipeline import PageVerdict


@dataclass(frozen=True)
class CachedVerdict:
    """A verdict plus the time it was cached."""

    verdict: PageVerdict
    cached_at: float


class VerdictCache:
    """LRU + TTL cache of page verdicts.

    Parameters
    ----------
    max_entries:
        Maximum cached URLs; least-recently-used entries are evicted.
    ttl:
        Maximum verdict age in seconds; stale entries read as misses.
    """

    def __init__(self, max_entries: int = 1000, ttl: float = 3600.0):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._entries: OrderedDict[str, CachedVerdict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, url: str, now: float) -> PageVerdict | None:
        """Return the cached verdict for ``url`` or ``None``.

        Expired entries are removed and counted as misses.
        """
        entry = self._entries.get(url)
        if entry is None:
            self.misses += 1
            return None
        if now - entry.cached_at > self.ttl:
            del self._entries[url]
            self.misses += 1
            return None
        self._entries.move_to_end(url)
        self.hits += 1
        return entry.verdict

    def put(self, url: str, verdict: PageVerdict, now: float) -> None:
        """Cache a verdict, evicting the oldest entry when full."""
        if url in self._entries:
            del self._entries[url]
        self._entries[url] = CachedVerdict(verdict=verdict, cached_at=now)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate(self, url: str) -> bool:
        """Drop one URL from the cache; True when it was present."""
        return self._entries.pop(url, None) is not None

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
