"""Client-side phishing-prevention add-on (the paper's companion [3]).

The paper emphasises that the detector admits "a client-side-only
implementation that offers (a) better privacy, (b) real-time protection
and (c) resilience to phishing webpages that return different contents
to different clients", and ships a proof-of-concept browser add-on.
This subpackage simulates that add-on around the library:

* :class:`~repro.addon.cache.VerdictCache` — TTL-bounded verdict cache
  (phishing sites live hours, so verdicts must expire);
* :class:`~repro.addon.policy.WarningPolicy` — allow/warn/block decisions
  with a user-managed trust list and override tracking;
* :class:`~repro.addon.addon.PhishingPreventionAddon` — the
  per-navigation hook gluing browser, pipeline, cache and policy, with
  usage statistics.
"""

from repro.addon.addon import NavigationResult, PhishingPreventionAddon
from repro.addon.cache import CachedVerdict, VerdictCache
from repro.addon.policy import Action, WarningPolicy

__all__ = [
    "Action",
    "CachedVerdict",
    "NavigationResult",
    "PhishingPreventionAddon",
    "VerdictCache",
    "WarningPolicy",
]
