"""Allow/warn/block policy of the add-on.

Maps pipeline verdicts to user-facing actions, honouring a user-managed
trust list (never warn on domains the user vouched for) and recording
overrides — users who click through a warning effectively whitelist the
page for the session, and the add-on must not nag.
"""

from __future__ import annotations

from enum import Enum

from repro.core.pipeline import PageVerdict
from repro.urls.parsing import UrlParseError, parse_url


class Action(Enum):
    """What the add-on does about a navigation."""

    ALLOW = "allow"
    WARN = "warn"      # interstitial with a continue option
    BLOCK = "block"    # hard block (confirmed phish with a target)


class WarningPolicy:
    """Decision policy over pipeline verdicts.

    Parameters
    ----------
    block_confirmed_phish:
        When True, verdicts of ``"phish"`` (target identified) hard-block;
        otherwise they warn.
    warn_on_suspicious:
        When True, ``"suspicious"`` verdicts show a warning; otherwise
        they are allowed (aggressiveness knob).
    """

    def __init__(
        self,
        block_confirmed_phish: bool = True,
        warn_on_suspicious: bool = True,
    ):
        self.block_confirmed_phish = block_confirmed_phish
        self.warn_on_suspicious = warn_on_suspicious
        self._trusted_rdns: set[str] = set()
        self._session_overrides: set[str] = set()

    # ---- trust management ---------------------------------------------
    def trust_domain(self, rdn: str) -> None:
        """Permanently trust a registered domain (user setting)."""
        self._trusted_rdns.add(rdn.lower())

    def revoke_trust(self, rdn: str) -> bool:
        """Remove a domain from the trust list; True when it was there."""
        try:
            self._trusted_rdns.remove(rdn.lower())
        except KeyError:
            return False
        return True

    def is_trusted(self, url: str) -> bool:
        """True when the URL's RDN is on the user trust list."""
        try:
            rdn = parse_url(url).rdn
        except UrlParseError:
            return False
        return rdn is not None and rdn.lower() in self._trusted_rdns

    def record_override(self, url: str) -> None:
        """The user clicked through a warning for this URL."""
        self._session_overrides.add(url)

    def was_overridden(self, url: str) -> bool:
        """True when the user already dismissed a warning for this URL."""
        return url in self._session_overrides

    def reset_session(self) -> None:
        """Forget session overrides (new browsing session)."""
        self._session_overrides.clear()

    # ---- decisions ------------------------------------------------------
    def decide(self, url: str, verdict: PageVerdict) -> Action:
        """Map a pipeline verdict to an action for this navigation."""
        if self.is_trusted(url) or self.was_overridden(url):
            return Action.ALLOW
        if verdict.verdict == "phish":
            return (
                Action.BLOCK if self.block_confirmed_phish else Action.WARN
            )
        if verdict.verdict == "suspicious":
            return Action.WARN if self.warn_on_suspicious else Action.ALLOW
        return Action.ALLOW
