"""The phishing-prevention add-on: the per-navigation hook.

Wires together a browser, the trained :class:`KnowYourPhish` pipeline, a
verdict cache and a warning policy — the whole flow the paper's
companion add-on [3] runs on every page load, entirely client-side:

1. trusted/overridden URLs pass immediately (no analysis, no logging);
2. fresh verdicts come from the cache when possible;
3. otherwise the page is scraped and analysed, and the verdict cached;
4. the policy converts the verdict into allow / warn / block.

The add-on keeps running statistics (pages checked, warnings, blocks,
analysis latency) so deployments can monitor their impact, and a
deterministic injected clock keeps everything testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.addon.cache import VerdictCache
from repro.addon.policy import Action, WarningPolicy
from repro.core.pipeline import KnowYourPhish, PageVerdict
from repro.web.browser import Browser, PageNotFound, RedirectLoopError


@dataclass
class NavigationResult:
    """Outcome of one navigation through the add-on."""

    url: str
    action: Action
    verdict: PageVerdict | None
    from_cache: bool = False
    analysis_ms: float = 0.0

    @property
    def allowed(self) -> bool:
        """True when the navigation proceeds without interruption."""
        return self.action is Action.ALLOW


@dataclass
class AddonStats:
    """Running counters of the add-on."""

    navigations: int = 0
    analyses: int = 0
    warnings: int = 0
    blocks: int = 0
    navigation_failures: int = 0
    analysis_ms: list[float] = field(default_factory=list)

    @property
    def median_analysis_ms(self) -> float:
        """Median per-page analysis latency in milliseconds."""
        if not self.analysis_ms:
            return 0.0
        ordered = sorted(self.analysis_ms)
        return ordered[len(ordered) // 2]


class PhishingPreventionAddon:
    """Real-time, client-side phishing prevention.

    Parameters
    ----------
    pipeline:
        A trained :class:`KnowYourPhish` pipeline.
    browser:
        Browser used to (re-)scrape pages the user navigates to.
    policy:
        Warning policy; defaults to block-phish / warn-suspicious.
    cache:
        Verdict cache; defaults to 1000 entries with a 1-hour TTL.
    clock:
        Zero-argument callable returning seconds; injected for
        deterministic tests (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        pipeline: KnowYourPhish,
        browser: Browser,
        policy: WarningPolicy | None = None,
        cache: VerdictCache | None = None,
        clock=None,
    ):
        self.pipeline = pipeline
        self.browser = browser
        self.policy = policy or WarningPolicy()
        self.cache = cache or VerdictCache()
        self.clock = clock or time.monotonic
        self.stats = AddonStats()

    def navigate(self, url: str) -> NavigationResult:
        """Run the add-on hook for one navigation to ``url``."""
        self.stats.navigations += 1
        now = self.clock()

        # Fast path: the user vouched for this destination.
        if self.policy.is_trusted(url) or self.policy.was_overridden(url):
            return NavigationResult(url=url, action=Action.ALLOW, verdict=None)

        verdict = self.cache.get(url, now=now)
        from_cache = verdict is not None
        analysis_ms = 0.0
        if verdict is None:
            try:
                snapshot = self.browser.load(url)
            except (PageNotFound, RedirectLoopError):
                # Unreachable pages cannot harm the user; let the browser
                # surface its own error page.
                self.stats.navigation_failures += 1
                return NavigationResult(
                    url=url, action=Action.ALLOW, verdict=None
                )
            started = self.clock()
            verdict = self.pipeline.analyze(snapshot)
            analysis_ms = (self.clock() - started) * 1000.0
            self.stats.analyses += 1
            self.stats.analysis_ms.append(analysis_ms)
            self.cache.put(url, verdict, now=now)

        action = self.policy.decide(url, verdict)
        if action is Action.WARN:
            self.stats.warnings += 1
        elif action is Action.BLOCK:
            self.stats.blocks += 1
        return NavigationResult(
            url=url,
            action=action,
            verdict=verdict,
            from_cache=from_cache,
            analysis_ms=analysis_ms,
        )

    def proceed_anyway(self, url: str) -> None:
        """The user dismissed the warning for ``url``; do not re-warn."""
        self.policy.record_override(url)
