"""Throughput benchmark: serial vs parallel, cold vs warm caches.

The paper argues deployability from per-page latency (Table VIII); a
production crawl additionally needs batch throughput.  This benchmark
drives the full pipeline over the robustness workload in four
configurations — {serial, 4-worker pool} × {cold cache, warm cache} —
and records pages/sec for each.  Two guarantees are asserted, not just
measured:

* every configuration produces verdicts identical to the serial cold
  run (parallelism and caching are execution strategies, not
  approximations);
* the warm-cache parallel run reaches at least 2x the serial cold
  throughput.
"""

from repro.evaluation.reporting import format_table

PAGES_PER_CLASS = 40
WORKERS = 4


def test_throughput_serial_vs_parallel(lab, save_result):
    rows = lab.throughput_benchmark(
        pages_per_class=PAGES_PER_CLASS, workers=WORKERS, backend="thread"
    )
    save_result("throughput", format_table(
        ["mode", "pages", "seconds", "pages_per_sec", "speedup",
         "verdicts_match"],
        [[r["mode"], r["pages"], round(r["seconds"], 3),
          round(r["pages_per_sec"], 1), round(r["speedup"], 2),
          r["verdicts_match"]] for r in rows],
    ))

    assert [r["mode"] for r in rows] == [
        "serial/cold", f"parallel{WORKERS}/cold",
        "serial/warm", f"parallel{WORKERS}/warm",
    ]
    # The core guarantee: identical verdicts in every configuration.
    assert all(r["verdicts_match"] for r in rows)
    # The acceptance bar: warm parallel is at least 2x serial cold.
    warm_parallel = rows[-1]
    assert warm_parallel["speedup"] >= 2.0, (
        f"warm parallel reached only {warm_parallel['speedup']:.2f}x"
    )
    # Caching alone already pays for itself on a repeat visit.
    serial_warm = rows[2]
    assert serial_warm["pages_per_sec"] > rows[0]["pages_per_sec"]


def _observed_batch(lab, tracer, metrics, pool=None):
    """One cold-cache batch over the robustness workload, instrumented."""
    from repro.core.detector import PhishingDetector
    from repro.core.features import FeatureExtractor
    from repro.core.pipeline import KnowYourPhish
    from repro.core.target import TargetIdentifier
    from repro.parallel import AnalysisCache
    from repro.web.browser import Browser

    urls, _labels = lab._robustness_workload(PAGES_PER_CLASS)
    base = lab.detector("fall")
    detector = PhishingDetector(
        FeatureExtractor(alexa=lab.world.alexa, cache=AnalysisCache()),
        feature_set=base.feature_set,
        threshold=base.threshold,
    )
    detector.model = base.model
    identifier = TargetIdentifier(lab.world.search, ocr=lab.ocr)
    pipeline = KnowYourPhish(
        detector, identifier, tracer=tracer, metrics=metrics
    )
    return pipeline.analyze_many(urls, Browser(lab.world.web), pool=pool)


def test_observability_overhead_bounded(lab, save_result):
    """Live tracing+metrics cost at most 5% of batch throughput."""
    import time

    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    def _timed(fn):
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    # Interleave the rounds so a transient load spike on the machine
    # hits both variants instead of skewing whichever phase it lands on.
    null_seconds = live_seconds = float("inf")
    for _ in range(5):
        null_seconds = min(null_seconds, _timed(
            lambda: _observed_batch(lab, NULL_TRACER, NULL_METRICS)
        ))
        live_seconds = min(live_seconds, _timed(
            lambda: _observed_batch(lab, Tracer(), MetricsRegistry())
        ))
    overhead = live_seconds / null_seconds - 1.0
    save_result("observability_overhead", format_table(
        ["instruments", "seconds"],
        [["null (NullTracer/NullMetrics)", round(null_seconds, 3)],
         ["live (Tracer/MetricsRegistry)", round(live_seconds, 3)],
         ["overhead", f"{overhead:+.1%}"]],
    ))
    assert overhead <= 0.05, (
        f"live instrumentation cost {overhead:.1%} (budget 5%)"
    )


def test_observed_metric_totals_process_equals_serial(lab):
    """Per-worker metric deltas merge to exactly the serial totals."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.parallel import WorkerPool

    serial_tracer, serial_metrics = Tracer(), MetricsRegistry()
    serial = _observed_batch(lab, serial_tracer, serial_metrics)
    pool_tracer, pool_metrics = Tracer(), MetricsRegistry()
    with WorkerPool(workers=WORKERS, backend="process") as pool:
        fanned = _observed_batch(lab, pool_tracer, pool_metrics, pool=pool)

    assert pool_metrics.as_dict() == serial_metrics.as_dict()
    assert [page.verdict.verdict for page in fanned.analyzed] == \
        [page.verdict.verdict for page in serial.analyzed]
    # the span *structure* is schedule-independent too (times are wall
    # clock here, so byte-identity is asserted in tests/obs instead)
    assert [span.name for span in pool_tracer.iter_spans()] == \
        [span.name for span in serial_tracer.iter_spans()]
