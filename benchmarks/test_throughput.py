"""Throughput benchmark: serial vs parallel, cold vs warm caches.

The paper argues deployability from per-page latency (Table VIII); a
production crawl additionally needs batch throughput.  This benchmark
drives the full pipeline over the robustness workload in four
configurations — {serial, 4-worker pool} × {cold cache, warm cache} —
and records pages/sec for each.  Two guarantees are asserted, not just
measured:

* every configuration produces verdicts identical to the serial cold
  run (parallelism and caching are execution strategies, not
  approximations);
* the warm-cache parallel run reaches at least 2x the serial cold
  throughput.
"""

from repro.evaluation.reporting import format_table

PAGES_PER_CLASS = 40
WORKERS = 4


def test_throughput_serial_vs_parallel(lab, save_result):
    rows = lab.throughput_benchmark(
        pages_per_class=PAGES_PER_CLASS, workers=WORKERS, backend="thread"
    )
    save_result("throughput", format_table(
        ["mode", "pages", "seconds", "pages_per_sec", "speedup",
         "verdicts_match"],
        [[r["mode"], r["pages"], round(r["seconds"], 3),
          round(r["pages_per_sec"], 1), round(r["speedup"], 2),
          r["verdicts_match"]] for r in rows],
    ))

    assert [r["mode"] for r in rows] == [
        "serial/cold", f"parallel{WORKERS}/cold",
        "serial/warm", f"parallel{WORKERS}/warm",
    ]
    # The core guarantee: identical verdicts in every configuration.
    assert all(r["verdicts_match"] for r in rows)
    # The acceptance bar: warm parallel is at least 2x serial cold.
    warm_parallel = rows[-1]
    assert warm_parallel["speedup"] >= 2.0, (
        f"warm parallel reached only {warm_parallel['speedup']:.2f}x"
    )
    # Caching alone already pays for itself on a repeat visit.
    serial_warm = rows[2]
    assert serial_warm["pages_per_sec"] > rows[0]["pages_per_sec"]
