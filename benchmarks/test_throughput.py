"""Throughput benchmark: serial vs parallel, per-page vs columnar batch.

The paper argues deployability from per-page latency (Table VIII); a
production crawl additionally needs batch throughput.  Two layers are
measured and gated here:

* **pipeline** — the full pipeline over the robustness workload in four
  configurations, {serial, 4-worker pool} × {cold cache, warm cache}.
  Serial modes run the per-page reference path; pooled modes dispatch
  columnar batches with a backend-aware chunk count (one chunk per
  process worker; a single chunk on the GIL-bound thread backend used
  here).  Every configuration must produce verdicts
  identical to the serial cold run, and the chunked pool must beat
  warm serial — the regression the columnar rewrite fixed was exactly
  ``parallel4/warm < serial/warm`` from per-page dispatch overhead.
* **extraction stage** — feature extraction isolated from the load and
  target-identification floors (serial and stateful by contract, so no
  extraction rewrite can move them).  The cold columnar pass must hold
  at least 3x the per-page loop on this runner; the committed artifact
  records the >5x figure against the pre-batch serial baseline.

Both tables land in ``results/throughput.txt`` and, machine-readable
with the pre-batch baseline attached, ``results/throughput.json``.
"""

import pytest

from repro.evaluation.reporting import format_table

PAGES_PER_CLASS = 40
WORKERS = 4

#: End-to-end pages/sec from the pre-batch committed artifact
#: (results/throughput.txt before the columnar rewrite) — the baseline
#: the batch path's headline speedup is quoted against.
PRE_BATCH_BASELINE = {
    "serial/cold": 153.0,
    "parallel4/cold": 178.8,
    "serial/warm": 411.3,
    "parallel4/warm": 386.5,
}


@pytest.fixture(scope="module")
def pipeline_rows(lab):
    return lab.throughput_benchmark(
        pages_per_class=PAGES_PER_CLASS, workers=WORKERS, backend="thread"
    )


@pytest.fixture(scope="module")
def extraction_rows(lab):
    return lab.extraction_benchmark(pages_per_class=PAGES_PER_CLASS)


def test_throughput_serial_vs_parallel(pipeline_rows):
    rows = pipeline_rows
    assert [r["mode"] for r in rows] == [
        "serial/cold", f"parallel{WORKERS}/cold",
        "serial/warm", f"parallel{WORKERS}/warm",
    ]
    # The core guarantee: identical verdicts in every configuration.
    assert all(r["verdicts_match"] for r in rows)
    # The acceptance bar: warm parallel is at least 2x serial cold.
    warm_parallel = rows[-1]
    assert warm_parallel["speedup"] >= 2.0, (
        f"warm parallel reached only {warm_parallel['speedup']:.2f}x"
    )
    # Caching alone already pays for itself on a repeat visit.
    serial_warm = rows[2]
    assert serial_warm["pages_per_sec"] > rows[0]["pages_per_sec"]


def test_chunked_pool_beats_warm_serial(pipeline_rows):
    """The regression the columnar rewrite fixed, kept fixed.

    Before chunked dispatch, per-page scheduling overhead made the
    4-worker pool *slower* than serial on a warm cache (386.5 vs 411.3
    pages/sec in the pre-batch artifact).  The pool must now win.
    """
    by_mode = {r["mode"]: r for r in pipeline_rows}
    warm_parallel = by_mode[f"parallel{WORKERS}/warm"]
    warm_serial = by_mode["serial/warm"]
    assert warm_parallel["pages_per_sec"] > warm_serial["pages_per_sec"], (
        f"parallel{WORKERS}/warm {warm_parallel['pages_per_sec']:.1f} p/s "
        f"did not beat serial/warm {warm_serial['pages_per_sec']:.1f} p/s"
    )


def test_extraction_stage_speedup(extraction_rows):
    rows = extraction_rows
    assert [r["mode"] for r in rows] == [
        "per_page/cold", "batch/cold", "batch/warm",
    ]
    # The differential guarantee re-checked on live corpus data.
    assert all(r["bit_identical"] for r in rows)
    batch_cold = rows[1]
    assert batch_cold["speedup"] >= 3.0, (
        f"cold batch extraction reached only {batch_cold['speedup']:.2f}x "
        f"the per-page loop"
    )
    assert rows[2]["speedup"] > batch_cold["speedup"]  # warm beats cold


def test_throughput_artifacts(
    pipeline_rows, extraction_rows, save_result, save_json
):
    save_result("throughput", "\n\n".join((
        "pipeline (end to end; serial = per-page reference path)\n"
        + format_table(
            ["mode", "pages", "seconds", "pages_per_sec", "speedup",
             "verdicts_match"],
            [[r["mode"], r["pages"], round(r["seconds"], 3),
              round(r["pages_per_sec"], 1), round(r["speedup"], 2),
              r["verdicts_match"]] for r in pipeline_rows],
        ),
        "extraction stage (loads + identification excluded)\n"
        + format_table(
            ["mode", "pages", "seconds", "pages_per_sec", "speedup",
             "bit_identical"],
            [[r["mode"], r["pages"], round(r["seconds"], 4),
              round(r["pages_per_sec"], 1), round(r["speedup"], 2),
              r["bit_identical"]] for r in extraction_rows],
        ),
    )))
    batch_cold = extraction_rows[1]
    save_json("throughput", {
        "pipeline": pipeline_rows,
        "extraction_stage": extraction_rows,
        "baseline_pre_batch_pages_per_sec": PRE_BATCH_BASELINE,
        "batch_cold_vs_pre_batch_serial": round(
            batch_cold["pages_per_sec"]
            / PRE_BATCH_BASELINE["serial/cold"], 2
        ),
        "notes": (
            "End-to-end rates are floored by serial page loads and "
            "per-page target identification (stateful by contract); "
            "the extraction_stage section isolates what the columnar "
            "rewrite accelerates.  batch_cold_vs_pre_batch_serial "
            "quotes cold columnar extraction against the pre-batch "
            "committed serial/cold end-to-end rate."
        ),
    })


def _observed_batch(lab, tracer, metrics, pool=None):
    """One cold-cache batch over the robustness workload, instrumented."""
    from repro.core.detector import PhishingDetector
    from repro.core.features import FeatureExtractor
    from repro.core.pipeline import KnowYourPhish
    from repro.core.target import TargetIdentifier
    from repro.parallel import AnalysisCache
    from repro.web.browser import Browser

    urls, _labels = lab._robustness_workload(PAGES_PER_CLASS)
    base = lab.detector("fall")
    detector = PhishingDetector(
        FeatureExtractor(alexa=lab.world.alexa, cache=AnalysisCache()),
        feature_set=base.feature_set,
        threshold=base.threshold,
    )
    detector.model = base.model
    identifier = TargetIdentifier(lab.world.search, ocr=lab.ocr)
    pipeline = KnowYourPhish(
        detector, identifier, tracer=tracer, metrics=metrics
    )
    return pipeline.analyze_many(urls, Browser(lab.world.web), pool=pool)


def test_observability_overhead_bounded(lab, save_result):
    """Live tracing+metrics cost at most 5% of batch throughput."""
    import time

    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    def _timed(fn):
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    # Interleave the rounds so a transient load spike on the machine
    # hits both variants instead of skewing whichever phase it lands on;
    # best-of-8 because the 5% budget is within single-round jitter.
    null_seconds = live_seconds = float("inf")
    for _ in range(8):
        null_seconds = min(null_seconds, _timed(
            lambda: _observed_batch(lab, NULL_TRACER, NULL_METRICS)
        ))
        live_seconds = min(live_seconds, _timed(
            lambda: _observed_batch(lab, Tracer(), MetricsRegistry())
        ))
    overhead = live_seconds / null_seconds - 1.0
    save_result("observability_overhead", format_table(
        ["instruments", "seconds"],
        [["null (NullTracer/NullMetrics)", round(null_seconds, 3)],
         ["live (Tracer/MetricsRegistry)", round(live_seconds, 3)],
         ["overhead", f"{overhead:+.1%}"]],
    ))
    assert overhead <= 0.05, (
        f"live instrumentation cost {overhead:.1%} (budget 5%)"
    )


def test_observed_metric_totals_process_equals_serial(lab):
    """Per-worker metric deltas merge to exactly the serial totals."""
    from repro.obs import MetricsRegistry, Tracer
    from repro.parallel import WorkerPool

    serial_tracer, serial_metrics = Tracer(), MetricsRegistry()
    serial = _observed_batch(lab, serial_tracer, serial_metrics)
    pool_tracer, pool_metrics = Tracer(), MetricsRegistry()
    with WorkerPool(workers=WORKERS, backend="process") as pool:
        fanned = _observed_batch(lab, pool_tracer, pool_metrics, pool=pool)

    assert pool_metrics.as_dict() == serial_metrics.as_dict()
    assert [page.verdict.verdict for page in fanned.analyzed] == \
        [page.verdict.verdict for page in serial.analyzed]
    # the span *structure* is schedule-independent too (times are wall
    # clock here, so byte-identity is asserted in tests/obs instead)
    assert [span.name for span in pool_tracer.iter_spans()] == \
        [span.name for span in serial_tracer.iter_spans()]
