"""§VI-D — target identification as a false-positive filter.

Paper shape: of 53 misclassified legitimate pages, the target identifier
confirmed 39 as legitimate, leaving 14 (4 'phish' + 10 'suspicious');
FPR drops from 0.0005 to ~0.0001 — roughly a 4x reduction.
"""

from repro.evaluation.reporting import format_table


def test_sec6d_fp_filtering(lab, benchmark, save_result):
    result = benchmark.pedantic(lab.sec6d_fp_filtering, rounds=1, iterations=1)

    text = format_table(
        ["metric", "value"],
        [
            ["detector false positives", result["false_positives"]],
            ["confirmed legitimate", result["breakdown"]["legitimate"]],
            ["still suspicious", result["breakdown"]["suspicious"]],
            ["identified as phish", result["breakdown"]["phish"]],
            ["fpr before", result["fpr_before"]],
            ["fpr after", result["fpr_after"]],
        ],
    )
    save_result("sec6d_fp_filtering", text)

    assert result["fpr_after"] <= result["fpr_before"]
    if result["false_positives"]:
        # A meaningful share of FPs gets confirmed legitimate (the paper
        # confirmed 39/53; our world's FPs are dominated by parked and
        # near-empty pages, which stay suspicious, so the bar is lower).
        confirmed = result["breakdown"]["legitimate"]
        assert confirmed / result["false_positives"] > 0.2
