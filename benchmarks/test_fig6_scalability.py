"""Fig. 6 — predictive performance vs test-set scale.

Paper shape: as the test set grows from 10k to 101k pages (same trained
model), precision and recall do not degrade and the FPR does not grow —
the errors grow strictly slower than the data.
"""

from repro.evaluation.reporting import format_table


def test_fig6_scalability(lab, benchmark, save_result):
    rows = benchmark.pedantic(
        lab.fig6_curve, kwargs={"steps": 8}, rounds=1, iterations=1
    )

    text = format_table(
        ["sample_size", "precision", "recall", "fp_rate"],
        [[row["sample_size"], row["precision"], row["recall"], row["fpr"]]
         for row in rows],
    )
    save_result("fig6_scalability", text)

    first, last = rows[0], rows[-1]
    # No degradation with scale (small tolerance for sampling noise on
    # the early, tiny subsets).
    assert last["precision"] >= first["precision"] - 0.05
    assert last["recall"] >= first["recall"] - 0.05
    assert last["fpr"] <= first["fpr"] + 0.005
    # The full-scale point keeps the headline quality.
    assert last["fpr"] < 0.02
    assert last["recall"] > 0.85
