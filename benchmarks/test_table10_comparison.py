"""Table X — comparison with re-implemented prior-work baselines.

Paper shape: our method reaches FPR <= 0.001 with recall >= 0.95 on the
scenario2 test sets; Cantina-style detection has an order of magnitude
higher FPR; URL-only and bag-of-words baselines trail the full system.
"""

import math

from repro.evaluation.reporting import format_table


def test_table10_comparison(lab, benchmark, save_result):
    rows = benchmark.pedantic(lab.table10_rows, rounds=1, iterations=1)

    text = format_table(
        ["technique", "fpr", "precision", "recall", "accuracy", "auc"],
        [[row["technique"], row["fpr"], row["precision"], row["recall"],
          row["accuracy"],
          row["auc"] if not math.isnan(row.get("auc", float("nan"))) else "-"]
         for row in rows],
    )
    save_result("table10_comparison", text)

    by_name = {row["technique"]: row for row in rows}
    ours = by_name["our method (multilingual)"]
    cantina = by_name["cantina (tf-idf + search)"]
    url_only = by_name["url lexical (ma et al. style)"]
    bow = by_name["bag-of-words (whittaker style)"]

    # Who wins on the shared multilingual test: our method beats every
    # baseline on F1 and keeps at least as low an FPR as term-static
    # methods.
    for baseline in (cantina, url_only, bow):
        assert ours["f1"] >= baseline["f1"]
    # Static-term baselines break outside the training language: their
    # FPR explodes relative to ours (paper's adaptability argument).
    assert cantina["fpr"] > 2 * max(ours["fpr"], 0.001)
    assert bow["fpr"] > 2 * max(ours["fpr"], 0.001)
    # Our recall stays high.
    assert ours["recall"] > 0.85
    assert by_name["our method (english)"]["recall"] > 0.85
