"""Fig. 4 — ROC per language.

Paper shape: at TPR 0.9 the FPR stays below 0.008 for every language; at
TPR 0.98 it stays below 0.02; AUC ~0.997-0.999 uniformly.
"""

import numpy as np

from repro.evaluation.reporting import format_curve
from repro.ml.metrics import roc_auc


def _fpr_at_tpr(fpr, tpr, target_tpr):
    feasible = fpr[tpr >= target_tpr]
    return float(feasible.min()) if len(feasible) else 1.0


def test_fig4_roc_languages(lab, benchmark, save_result):
    curves = benchmark.pedantic(lab.fig4_curves, rounds=1, iterations=1)

    lines = [
        format_curve(language, fpr, tpr)
        for language, (fpr, tpr) in curves.items()
    ]
    save_result("fig4_roc_languages", "\n".join(lines))

    aucs = []
    for language, (fpr, tpr) in curves.items():
        assert _fpr_at_tpr(fpr, tpr, 0.9) < 0.05, language
        y, scores = lab.scenario2_scores(language)
        aucs.append(roc_auc(y, scores))
    # Uniformly high AUC across languages.
    assert min(aucs) > 0.98
    assert max(aucs) - min(aucs) < 0.02
