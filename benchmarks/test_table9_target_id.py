"""Table IX — target identification on phishBrand.

Paper shape: top-1 success 90.5%, top-2 95.8%, top-3 97.3%; a handful of
pages have no identifiable target at all (17/600 in the paper).
"""

from repro.evaluation.reporting import format_table


def test_table9_target_id(lab, benchmark, save_result):
    rows = benchmark.pedantic(lab.table9_target_id, rounds=1, iterations=1)

    text = format_table(
        ["targets", "identified", "unknown", "missed", "success_rate"],
        [[name, row["identified"], row["unknown"], row["missed"],
          row["success_rate"]] for name, row in rows.items()],
    )
    save_result("table9_target_id", text)

    top1 = rows["top-1"]["success_rate"]
    top2 = rows["top-2"]["success_rate"]
    top3 = rows["top-3"]["success_rate"]
    # High success, monotone in k — the paper's 90.5 / 95.8 / 97.3 shape.
    assert top1 > 0.8
    assert top1 <= top2 <= top3
    assert top3 > 0.85
    # A few unknown-target pages exist by construction.
    assert rows["top-1"]["unknown"] >= 1
