"""Fig. 5 — ROC per feature set (cross-validation + English scenario).

Paper shape: f1 has the largest area under the curve of the individual
sets in both scenarios; f3 and f5 the smallest; fall dominates.
"""

from repro.evaluation.reporting import format_curve
from repro.ml.metrics import auc


def test_fig5_roc_feature_sets(lab, benchmark, save_result):
    curves = benchmark.pedantic(lab.fig5_curves, rounds=1, iterations=1)

    lines = []
    areas = {}
    for (feature_set, scenario), (fpr, tpr) in curves.items():
        areas[(feature_set, scenario)] = auc(fpr, tpr)
        lines.append(format_curve(f"{feature_set}/{scenario}", fpr, tpr))
    save_result("fig5_roc_feature_sets", "\n".join(lines))

    for scenario in ("cross-validation", "english"):
        fall_auc = areas[("fall", scenario)]
        # fall dominates every individual set (tolerance for fold noise).
        for feature_set in ("f1", "f2", "f3", "f4", "f5"):
            assert fall_auc >= areas[(feature_set, scenario)] - 0.01, (
                scenario, feature_set
            )
        # The weak sets (f3, f5) trail the strong sets (f1, f2).
        strong = max(areas[("f1", scenario)], areas[("f2", scenario)])
        weak = min(areas[("f3", scenario)], areas[("f5", scenario)])
        assert weak < strong
