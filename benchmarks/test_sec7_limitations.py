"""§VII-B and §VII-C — limitations (IP URLs) and evasion techniques.

Paper shape: single evasion techniques "did not impact classifier
performance"; IP-based URLs were a limitation (recall 0.76 vs 0.95
global).  The IP shape is a *known deviation* of this reproduction
(documented in EXPERIMENTS.md): our synthetic legitimate corpus never
uses IP hosting, so IP URLs stay easy to detect instead of degrading.
"""

from repro.evaluation.reporting import format_table


def test_sec7_ip_urls(lab, benchmark, save_result):
    result = benchmark.pedantic(
        lab.sec7_ip_recall, kwargs={"count": 30}, rounds=1, iterations=1
    )
    text = format_table(
        ["metric", "recall"],
        [["ip-based phish", result["ip_recall"]],
         ["global (scenario2)", result["global_recall"]]],
    )
    save_result("sec7_ip_urls", text)

    # Both recalls are measurable; the paper's *drop* on IP URLs does not
    # reproduce on the synthetic corpus (see module docstring).
    assert 0.5 <= result["ip_recall"] <= 1.0
    assert result["global_recall"] > 0.85


def test_sec7_evasion(lab, benchmark, save_result):
    results = benchmark.pedantic(
        lab.sec7_evasion, kwargs={"count": 30}, rounds=1, iterations=1
    )
    text = format_table(
        ["evasion technique", "detection recall"],
        [[technique, recall] for technique, recall in results.items()],
    )
    save_result("sec7_evasion", text)

    baseline = results["none"]
    assert baseline > 0.85
    for technique, recall in results.items():
        if technique == "none":
            continue
        # No single technique collapses detection (paper: "they did not
        # impact classifier performance").
        assert recall > baseline - 0.3, (technique, recall)
