"""Table VII / Fig. 2 — accuracy per feature set, both scenarios.

Paper shape (cross-validation): f1 is the strongest individual set
(precision 0.982), f3 and f5 the weakest (0.747 / 0.880), and fall beats
everything (precision 0.991, FPR 0.001).  In the English scenario the
individual sets degrade (f1 precision drops to 0.823; f3/f4/f5 collapse
below 0.3) while fall stays high (0.956) — the whole point of combining
the groups.
"""

from repro.evaluation.reporting import format_table


def test_table7_feature_sets(lab, benchmark, save_result):
    rows = benchmark.pedantic(lab.table7_rows, rounds=1, iterations=1)

    text = format_table(
        ["scenario", "set", "precision", "recall", "f1", "fp_rate", "auc"],
        [[row["scenario"], row["feature_set"], row["precision"],
          row["recall"], row["f1"], row["fpr"], row["auc"]] for row in rows],
    )
    save_result("table7_feature_sets", text)

    by_key = {(row["scenario"], row["feature_set"]): row for row in rows}
    for scenario in ("cross-validation", "english"):
        fall = by_key[(scenario, "fall")]
        f1 = by_key[(scenario, "f1")]
        f3 = by_key[(scenario, "f3")]
        f5 = by_key[(scenario, "f5")]
        # fall is at least as good as any individual set (small tolerance
        # for fold noise).
        for feature_set in ("f1", "f2", "f3", "f4", "f5"):
            assert fall["auc"] >= by_key[(scenario, feature_set)]["auc"] - 0.01
        # f3 and f5 are the weak sets; f1 is a strong one.
        assert f3["f1"] < f1["f1"]
        assert f5["f1"] < fall["f1"]
        # fall keeps the false positive rate low.
        assert fall["fpr"] < 0.02
    # fall recall is high in both scenarios (paper: >0.95).
    assert by_key[("english", "fall")]["recall"] > 0.85
