"""§VII-B — attribution of misclassified legitimate pages.

Paper claim: "Most misclassified legitimate webpages (>50%) had one of
these characteristics" — long unsplittable domain names, digit/hyphen-
separated short brands, abbreviations — with parked domains and empty
pages as the other named populations.  Our generator labels every page
with its kind, so the attribution is exact.
"""

from repro.evaluation.analysis import misclassified_legitimate
from repro.evaluation.reporting import format_table


def test_sec7_misclassification(lab, benchmark, save_result):
    def run():
        detector = lab.detector("fall")
        return misclassified_legitimate(
            detector, lab.dataset("english"), features=lab.features("english")
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[kind, count] for kind, count in report.kind_counts.most_common()]
    rows.append(["(total false positives)", report.fp_count])
    rows.append(["(term-issue share)", round(report.term_issue_share, 3)])
    rows.append(["(parked/empty share)", round(report.degenerate_share, 3)])
    save_result("sec7_misclassification", format_table(["kind", "count"], rows))

    # The FP population is dominated by the known-hard kinds, as in the
    # paper's analysis.
    if report.fp_count >= 5:
        assert report.hard_case_share > 0.5
    # Ordinary business/blog pages are rarely misclassified.
    ordinary = sum(
        report.kind_counts[kind] for kind in ("business", "blog", "shop")
    )
    assert ordinary <= max(2, report.fp_count // 2)
