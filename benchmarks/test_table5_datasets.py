"""Table V — dataset description (initial vs cleaned sizes)."""

from repro.evaluation.reporting import format_table


def test_table5_datasets(lab, benchmark, save_result):
    rows = benchmark.pedantic(lab.table5_rows, rounds=1, iterations=1)

    text = format_table(
        ["set", "name", "initial", "clean"],
        [[row["set"], row["name"], row["initial"], row["clean"]]
         for row in rows],
    )
    save_result("table5_datasets", text)

    by_name = {row["name"]: row for row in rows}
    # Phishing feeds lose entries to cleaning (Table V shows ~10-25% loss).
    for name in ("phishTrain", "phishTest"):
        assert by_name[name]["initial"] > by_name[name]["clean"]
    # Test sets are uncleaned: initial == clean.
    assert by_name["english"]["initial"] == by_name["english"]["clean"]
    # Legitimate test sets dwarf the phishing sets, as in the paper.
    assert by_name["english"]["clean"] > 3 * by_name["phishTest"]["clean"]
