"""Tiered-serving benchmark: the triage ladder must pay for itself.

Offers the identical 3x-overload Zipf workload to the untriaged
full-pipeline engine and to the tiered engine (URL-only tier-0
pre-filter + sharded TTL caches + negative cache), both in simulated
time on a :class:`~repro.resilience.ManualClock`.

The assertions are the triage ladder's contract:

* **fast** — tier-0 resolution cuts p50 latency by >= 5x and raises
  sustained throughput on a workload whose obvious majority never
  needs a page load;
* **majority at tier 0** — the calibrated two-sided band resolves
  most requests without escalation;
* **correct** — every *escalated* verdict is byte-identical to the
  offline full-pipeline reference (triage skips work, never changes
  it), and corpus-level precision/recall is no worse than the
  untriaged configuration;
* **deterministic** — two runs produce byte-identical results.
"""


def _scenario(lab):
    result = lab.serving_tiered_benchmark()
    report = result["tiered"]["report"]
    # The run only means something if the ladder actually engaged.
    assert report["tiers"]["tier0"]["count"] > 0, "tier 0 never fired"
    assert result["untriaged"]["completed"] > 0, "baseline served nothing"
    return result


def test_serving_tiered_contract(lab, save_result, save_json):
    """The acceptance properties of the tiered serving scenario."""
    result = _scenario(lab)

    # 1. Every request terminates in both configurations.
    assert result["untriaged"]["report"]["total"] == result["requests"]
    assert result["tiered"]["report"]["total"] == result["requests"]

    # 2. Tier 0 resolves the obvious majority of the Zipf workload.
    assert result["triage"]["tier0_share"] >= 0.5

    # 3. >= 5x p50 latency cut and strictly higher sustained
    #    throughput than the untriaged engine on the same schedule.
    assert result["p50_speedup"] >= 5.0
    assert (
        result["tiered"]["throughput_rps"]
        > result["untriaged"]["throughput_rps"]
    )

    # 4. Escalation changes nothing: escalated verdicts byte-identical
    #    to the offline full-pipeline reference.
    assert result["escalated_verdict_mismatches"] == 0

    # 5. The ladder never trades accuracy for speed: corpus-level
    #    precision/recall at least match the untriaged configuration.
    quality = result["quality"]
    assert (
        quality["tiered"]["precision"] >= quality["untriaged"]["precision"]
    )
    assert quality["tiered"]["recall"] >= quality["untriaged"]["recall"]

    save_json("serving_tiered", result)
    rows = [
        ("requests", result["requests"]),
        ("tier0_share", f"{result['triage']['tier0_share']:.3f}"),
        ("escalation_rate",
         f"{result['triage']['corpus_escalation_rate']:.3f}"),
        ("untriaged_p50", f"{result['untriaged']['latency_p50']:.4f}s"),
        ("tiered_p50", f"{result['tiered']['latency_p50']:.4f}s"),
        ("p50_speedup", f"{result['p50_speedup']:.1f}x"),
        ("untriaged_rps", f"{result['untriaged']['throughput_rps']:.1f}"),
        ("tiered_rps", f"{result['tiered']['throughput_rps']:.1f}"),
        ("escalated_mismatches", result["escalated_verdict_mismatches"]),
        ("tiered_precision", f"{quality['tiered']['precision']:.3f}"),
        ("tiered_recall", f"{quality['tiered']['recall']:.3f}"),
    ]
    save_result(
        "serving_tiered",
        "\n".join(f"{key:>22}  {value}" for key, value in rows),
    )


def test_serving_tiered_deterministic(lab):
    """Two full tiered runs produce byte-identical results."""
    assert _scenario(lab) == _scenario(lab)
