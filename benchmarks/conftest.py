"""Shared benchmark fixtures.

One :class:`~repro.evaluation.runner.Lab` (synthetic world + cached
features + cached models) is built per session and shared by every
benchmark.  Each benchmark renders the paper artefact it reproduces into
``benchmarks/results/`` so the numbers cited in EXPERIMENTS.md can be
regenerated from a single run.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplies the default corpus sizes
  (default 1.0; the default corpus is already ~1/25 of the paper's).
"""

import json
import os
from pathlib import Path

import pytest

from repro.corpus.datasets import CorpusConfig
from repro.evaluation.runner import Lab

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_config() -> CorpusConfig:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    base = CorpusConfig()
    return CorpusConfig(
        seed=base.seed,
        leg_train=max(60, int(base.leg_train * scale)),
        phish_train=max(40, int(base.phish_train * scale)),
        phish_test=max(40, int(base.phish_test * scale)),
        phish_brand=max(30, int(base.phish_brand * scale)),
        english_test=max(300, int(base.english_test * scale)),
        other_language_test=max(100, int(base.other_language_test * scale)),
    )


@pytest.fixture(scope="session")
def lab():
    return Lab(_bench_config(), n_estimators=100)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Write a machine-readable benchmark artefact to ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n=== {name} -> {path} ===")

    return _save
