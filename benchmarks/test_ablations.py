"""Ablations of the design choices DESIGN.md calls out.

1. Discrimination threshold: 0.7 vs 0.5 — the paper picks 0.7 to favour
   the legitimate class, so 0.7 must yield a lower FPR.
2. Keyterm count N: success saturates around the paper's N=5.
3. Hellinger vs Jaccard for f2: the probability-aware metric must not
   lose to plain set overlap.
4. Control partition of f1: internal/external grouping vs flat link
   statistics — the paper's Section III-A conjecture.
"""

import numpy as np

from repro.core.datasources import DataSources
from repro.core.features import url_features
from repro.core.target import TargetIdentifier
from repro.evaluation.reporting import format_table
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import binary_metrics, roc_auc


def test_ablation_threshold(lab, benchmark, save_result):
    def run():
        y, scores = lab.scenario2_scores("english")
        rows = []
        for threshold in (0.5, 0.6, 0.7, 0.8, 0.9):
            metrics = binary_metrics(y, (scores >= threshold).astype(int))
            rows.append([threshold, metrics.precision, metrics.recall,
                         metrics.fpr])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_threshold", format_table(
        ["threshold", "precision", "recall", "fp_rate"], rows
    ))

    by_threshold = {row[0]: row for row in rows}
    # Raising the threshold can only lower (or keep) FPR and recall.
    assert by_threshold[0.7][3] <= by_threshold[0.5][3]
    assert by_threshold[0.7][2] <= by_threshold[0.5][2] + 1e-9


def test_ablation_keyterm_count(lab, benchmark, save_result):
    pages = [
        page for page in lab.dataset("phishBrand") if page.target_mld
    ]

    def run():
        rows = []
        for n_terms in (2, 3, 5, 8):
            identifier = TargetIdentifier(
                lab.world.search, ocr=lab.ocr, n_terms=n_terms
            )
            hits = sum(
                identifier.identify(page.snapshot).target_in_top(
                    page.target_mld, 3
                )
                for page in pages
            )
            rows.append([n_terms, hits / len(pages)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_keyterm_count", format_table(
        ["n_terms", "top3_success"], rows
    ))

    by_n = {row[0]: row[1] for row in rows}
    # N=5 is at least as good as a too-small N, and success saturates:
    # going to N=8 buys little.
    assert by_n[5] >= by_n[2] - 0.05
    assert abs(by_n[8] - by_n[5]) < 0.15


def test_ablation_hellinger_vs_jaccard(lab, benchmark, save_result):
    from repro.core.features import FeatureExtractor

    train = lab.dataset("legTrain") + lab.dataset("phishTrain")
    test = lab.dataset("english").subset(range(400)) + lab.dataset("phishTest")

    def run():
        rows = []
        for metric in ("hellinger", "jaccard"):
            extractor = FeatureExtractor(
                alexa=lab.world.alexa, term_metric=metric
            )
            from repro.core.detector import PhishingDetector
            detector = PhishingDetector(
                extractor, feature_set="f2", n_estimators=60
            )
            X_train = extractor.extract_many(p.snapshot for p in train)
            detector.fit(X_train, train.labels())
            X_test = extractor.extract_many(p.snapshot for p in test)
            scores = detector.predict_proba(X_test)
            rows.append([metric, roc_auc(test.labels(), scores)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_hellinger_vs_jaccard", format_table(
        ["f2 metric", "auc"], rows
    ))

    by_metric = {row[0]: row[1] for row in rows}
    # The probability-aware Hellinger distance must not lose to set overlap.
    assert by_metric["hellinger"] >= by_metric["jaccard"] - 0.01


def test_ablation_control_partition(lab, benchmark, save_result):
    """f1 with the internal/external partition vs flat link statistics."""
    train = lab.dataset("legTrain") + lab.dataset("phishTrain")
    test = lab.dataset("english").subset(range(400)) + lab.dataset("phishTest")

    def matrix(pages, flat):
        rows = []
        for page in pages:
            sources = DataSources(page.snapshot, psl=lab.extractor.psl)
            if flat:
                rows.append(url_features.compute_flat(sources, lab.world.alexa))
            else:
                rows.append(url_features.compute(sources, lab.world.alexa))
        return np.asarray(rows)

    def run():
        rows = []
        for flat in (False, True):
            X_train = matrix(train, flat)
            X_test = matrix(test, flat)
            model = GradientBoostingClassifier(
                n_estimators=60, subsample=0.9, random_state=0
            ).fit(X_train, train.labels())
            auc_value = roc_auc(test.labels(), model.predict_proba(X_test))
            rows.append(["flat" if flat else "partitioned", auc_value])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_control_partition", format_table(
        ["f1 variant", "auc"], rows
    ))

    by_variant = {row[0]: row[1] for row in rows}
    # Section III-A conjecture: the control partition helps (or at least
    # never hurts) URL-feature classification.
    assert by_variant["partitioned"] >= by_variant["flat"] - 0.005
