"""Serving-engine chaos benchmark: overload + faults, zero surprises.

Offers 3x the sustainable request rate of Zipf-skewed traffic to the
:class:`~repro.serve.ServingEngine` and injects every failure mode the
serving core defends against — a mid-run search outage, hot-key storms
on pages first seen during the outage, deterministic page stalls, a
worker loss, and a graceful drain — all on a
:class:`~repro.resilience.ManualClock` so the run is byte-identical
every time.

The assertions are the serving core's contract under overload:

* **no lost requests** — every offered request reaches exactly one
  terminal outcome (served / degraded / shed);
* **bounded** — the queue never exceeds its limit and sheds stay below
  100%;
* **correct** — every completed verdict is byte-identical to offline
  ``analyze_many`` under one of the two dependency states chaos
  creates (healthy search, forced-down search);
* **on time** — no completed response exceeds its deadline budget;
* **drains clean** — post-drain arrivals are refused with ``draining``
  and everything admitted before the drain completes.
"""


def _scenario(lab):
    result = lab.serving_benchmark()
    # Stamp of the exercised defences: the run is only a meaningful
    # chaos benchmark if every mechanism actually fired.
    report = result["report"]
    assert report["degraded"] > 0, "outage never degraded a verdict"
    assert report["coalesced"] > 0, "no request coalescing occurred"
    assert report["memo_hits"] > 0, "verdict memo never hit"
    assert result["web_stalls"] > 0, "no stall faults fired"
    assert result["breaker"]["opened"] >= 1, "search breaker never opened"
    return result


def test_serving_overload_contract(lab, save_result, save_json):
    """The six acceptance properties of the overload scenario."""
    result = _scenario(lab)
    report = result["report"]

    # 1. Every request terminates: served, degraded, or shed.
    assert result["terminated"] == result["requests"]
    assert (
        report["served"] + report["degraded"] + report["shed"]
        == result["requests"]
    )

    # 2. Shed rate below 100% — the engine keeps doing useful work at
    #    3x overload — while the queue never exceeds its bound.
    assert 0.0 < report["shed_rate"] < 1.0
    assert report["max_queue_depth"] <= report["queue_limit"]
    assert report["max_inflight"] <= result["workers"]

    # 3. Completed verdicts byte-identical to offline analyze_many.
    assert result["verdict_mismatches"] == 0

    # 4. No completed response past its deadline budget.
    assert result["budget_violations"] == 0
    assert report["latency_p99"] <= result["budget_s"]

    # 5. Graceful drain: exactly the post-drain arrivals are refused
    #    as ``draining`` — admitted requests are never abandoned.
    assert (
        report["shed_reasons"]["draining"] == result["post_drain_arrivals"]
    )

    # 6. Overload surfaced as *explicit* shed verdicts across the
    #    defence layers, not silent queue growth.
    for reason in ("deadline", "queue_full", "rate_limited",
                   "upstream_failure"):
        assert report["shed_reasons"].get(reason, 0) > 0, reason
    assert report["admission"]["throttle_engaged"] >= 1

    save_json("serving_overload", result)
    lines = [f"{key:>22}  {value}" for key, value in sorted(report.items())]
    save_result("serving_overload", "\n".join(lines))


def test_serving_overload_deterministic(lab):
    """Two full chaos runs produce byte-identical reports."""
    assert _scenario(lab) == _scenario(lab)
