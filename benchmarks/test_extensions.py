"""Extension experiments beyond the paper's tables.

Three analyses the paper argues qualitatively, quantified here:

* §VIII — victim exposure under delayed blacklists vs client-side
  detection ("this process induces a delay of several hours ...
  phishing attacks have a median lifetime of a few hours");
* §IV-C — the choice of gradient boosting over a linear learner;
* generalisation under temporal drift (later campaign waves on new
  hosting mixes and unseen brands, the deployability claim).
"""

from repro.evaluation.reporting import format_table


def test_ext_blacklist_exposure(lab, benchmark, save_result):
    result = benchmark.pedantic(
        lab.sec8_blacklist_exposure, rounds=1, iterations=1
    )
    save_result("ext_blacklist_exposure", format_table(
        ["metric", "value"],
        [[metric, value] for metric, value in result.items()],
    ))
    # A several-hour blacklist delay against few-hour campaign lifetimes
    # leaves victims exposed most of the time; client-side detection
    # protects from the first load.
    assert result["blacklist_mean_exposure"] > 0.4
    assert result["client_side_mean_exposure"] < 0.2
    assert result["blacklist_mean_exposure"] > \
        3 * result["client_side_mean_exposure"]


def test_ext_model_choice(lab, benchmark, save_result):
    result = benchmark.pedantic(
        lab.model_choice_ablation, rounds=1, iterations=1
    )
    save_result("ext_model_choice", format_table(
        ["model", "auc"],
        [[model, auc] for model, auc in result.items()],
    ))
    # Boosting must not lose to the linear learner on the same features
    # (the paper's Section IV-C rationale).
    assert result["gradient_boosting"] >= \
        result["logistic_regression"] - 0.005
    assert result["gradient_boosting"] > 0.98


def test_ext_temporal_drift(lab, benchmark, save_result):
    result = benchmark.pedantic(
        lab.temporal_drift, kwargs={"count": 50}, rounds=1, iterations=1
    )
    save_result("ext_temporal_drift", format_table(
        ["campaign wave", "recall"],
        [["training-era (phishTest)", result["baseline_recall"]],
         ["drifted (new hosting + unseen brands)", result["drifted_recall"]]],
    ))
    # The model generalises: recall on the drifted wave stays within
    # 0.15 of the training-era recall.
    assert result["drifted_recall"] > result["baseline_recall"] - 0.15
    assert result["drifted_recall"] > 0.75
