"""Training-speed benchmark: shared-presort fitting + fold-parallel CV.

PR 2 made per-page inference fast; training (100 trees over 212
features, Section IV-C, evaluated by 5-fold CV in Section VI-C) is the
remaining hot path.  This benchmark fits the detector's ensemble on the
standard corpus feature matrix once per ``tree_method`` and runs
scenario1-style cross-validation serially and fold-parallel, recording
everything to the machine-readable ``benchmarks/results/training.json``
(fits/sec, per-stage timings, split-search counters, speedup ratios).

Two guarantees are asserted, not just measured:

* the presorted path is at least 2x the seed exact path with
  **bit-identical** ``predict_proba`` output (it is an execution
  strategy, not an approximation — unlike ``histogram``, whose
  deviation is expected and only recorded);
* fold-parallel cross-validation returns pooled scores exactly equal
  to the serial run; its speedup is recorded, and asserted to exceed
  1x only on machines that actually have more than one core (process
  workers cannot beat serial on a single CPU).
"""

import os

PRESORT_MIN_SPEEDUP = 2.0
CV_WORKERS = 4


def test_training_speed(lab, save_result, save_json):
    result = lab.training_benchmark(
        cv_workers=CV_WORKERS, cv_backend="process"
    )
    save_json("training", result)

    from repro.evaluation.reporting import format_table

    save_result("training_speed", format_table(
        ["tree_method", "fit_seconds", "stages_per_sec", "speedup",
         "proba_identical"],
        [[name, round(m["fit_seconds"], 3), round(m["stages_per_sec"], 1),
          round(m["speedup_vs_exact"], 2), m["proba_identical_to_exact"]]
         for name, m in result["methods"].items()],
    ))

    methods = result["methods"]
    assert set(methods) == {"exact", "presort", "histogram"}

    # The acceptance bar: presort is >=2x the seed exact path...
    presort = methods["presort"]
    assert presort["speedup_vs_exact"] >= PRESORT_MIN_SPEEDUP, (
        f"presort reached only {presort['speedup_vs_exact']:.2f}x"
    )
    # ...with bit-identical predictions (not approximately equal).
    assert presort["proba_identical_to_exact"]

    # The histogram path exists for scale, not fidelity: it must at
    # least beat exact too, but its predictions may differ.
    assert methods["histogram"]["speedup_vs_exact"] > 1.0

    # Fold-parallel CV: identical pooled scores, recorded speedup.
    cv = result["cross_validation"]
    assert cv["scores_identical"], "parallel CV diverged from serial"
    assert cv["workers"] == CV_WORKERS
    assert cv["speedup"] > 0.0
    if (os.cpu_count() or 1) > 1:
        assert cv["speedup"] > 1.0, (
            f"fold-parallel CV was not faster ({cv['speedup']:.2f}x)"
        )
