"""Robustness benchmark: detection quality vs injected fault rate.

Measures three things the paper's production argument (Section VIII)
implies but never quantifies:

* **completion** — with transient faults injected at increasing rates
  and retries enabled, every page must still produce a verdict (no
  uncaught exceptions, nothing quarantined but permanent failures);
* **accuracy under faults** — transient faults leave content untouched,
  so the retried verdicts must match the fault-free baseline exactly;
* **graceful degradation** — with the search engine forced down, every
  flagged page still yields a detector-only verdict tagged ``degraded``;
  with partial content (truncated HTML, lost screenshots) accuracy
  degrades smoothly instead of the run crashing.
"""

from repro.evaluation.reporting import format_table

PAGES_PER_CLASS = 40


def test_robustness_curve(lab, benchmark, save_result):
    """Completion rate and accuracy vs transient-fault rate."""
    rows = benchmark.pedantic(
        lab.robustness_curve,
        kwargs={"pages_per_class": PAGES_PER_CLASS},
        rounds=1, iterations=1,
    )
    save_result("robustness_fault_curve", format_table(
        ["fault_rate", "pages", "completed", "quarantined", "retried",
         "faults_injected", "accuracy"],
        [[r["fault_rate"], r["pages"], r["completed"], r["quarantined"],
          r["retried_pages"], r["faults_injected"], r["accuracy"]]
         for r in rows],
    ))

    baseline = rows[0]
    assert baseline["fault_rate"] == 0.0
    for row in rows:
        # Retries ride out every transient fault: full completion, no
        # quarantine, and verdicts identical to the fault-free run.
        assert row["completion_rate"] == 1.0
        assert row["quarantined"] == 0
        assert row["accuracy"] == baseline["accuracy"]
    twenty = next(r for r in rows if r["fault_rate"] == 0.2)
    assert twenty["faults_injected"] > 0
    assert twenty["retried_pages"] > 0


def test_search_outage_degrades_gracefully(lab, save_result):
    """Search down: breaker trips, flagged pages stay detector-only."""
    result = lab.robustness_search_outage(count=30)
    save_result("robustness_search_outage", format_table(
        ["metric", "value"], [[k, v] for k, v in result.items()],
    ))
    assert result["flagged"] > 0
    # Every flagged page degraded to a detector-only verdict — none lost.
    assert result["degraded_detector_only"] == result["flagged"]
    # The breaker's transition log records the open as an explicit
    # event: it entered ``open`` exactly once and never recovered
    # (the engine stays down for the whole run).
    assert result["breaker_opened"] == 1
    assert result["breaker_trips"] >= 1
    assert result["transitions"].get("closed->open") == 1
    # After the trip, queries fail fast instead of hitting the engine.
    assert result["rejected_fast"] > 0
    assert result["queries_attempted"] <= 3


def test_partial_content_accuracy_floor(lab, save_result):
    """Partial pages are analyzed, costing bounded accuracy, not a crash."""
    result = lab.robustness_degraded_content(
        rate=0.5, pages_per_class=PAGES_PER_CLASS
    )
    save_result("robustness_partial_content", format_table(
        ["metric", "value"], [[k, v] for k, v in result.items()],
    ))
    assert result["degraded_pages"] > 0
    # Features from surviving sources keep most of the signal.
    assert result["degraded_accuracy"] >= result["baseline_accuracy"] - 0.15
