"""Quality-observability benchmark: drift alerts + monitoring overhead.

Two bounds back the quality subsystem's contract:

* **Determinism** — the injected campaign-wave drift scenario raises
  the same alert log byte for byte on every run, and a healthy stream
  raises none;
* **Read-only, nearly free** — a monitored tiered serving run returns
  responses field-for-field identical to an unmonitored one, and the
  monitor's marginal cost (its exact tap stream, replayed into fresh
  monitors in a timed tight loop) stays under 5% of the unmonitored
  run's wall clock.

The overhead is taps-vs-baseline rather than a monitored-vs-baseline
end-to-end delta: the true signal is ~2 ms against ~65 ms runs, and
shared runners jitter individual runs by 30%+ in multi-second bursts,
so a naive wall-clock ratio measures the scheduler, not the monitor.

``results/quality_monitor.json`` commits the measured numbers.
"""

import json

#: The acceptance bound: the monitor's tap stream may cost at most 5%
#: of the identical unmonitored run's wall-clock time.
MAX_OVERHEAD = 0.05

#: Interleaved baseline/monitored run pairs (order alternating each
#: round, GC paused during the timed region); min-of-N damps scheduler
#: noise in the baseline denominator.
REPEATS = 6


def test_drift_scenario_alerts_are_deterministic(lab):
    first = lab.quality_drift_scenario()
    second = lab.quality_drift_scenario()
    # Healthy replay of training rows must stay quiet...
    assert first["healthy_alerts"] == []
    # ...and the campaign wave must fire at least the score signal.
    assert first["drift_alerts"], "drifted phase raised no drift alert"
    assert "score" in first["drifted_signals"]
    # Same seed -> same artifact, to the byte.
    assert json.dumps(first["artifact"], sort_keys=True) == json.dumps(
        second["artifact"], sort_keys=True
    )


def test_monitor_overhead_and_identity(lab, save_json):
    result = lab.quality_serving_benchmark(repeats=REPEATS)
    assert result["responses_identical"], (
        "quality monitor perturbed serving responses"
    )
    # The deliberately unmeetable latency objective demonstrates the
    # burn-rate alert path end to end.
    assert any(
        alert["objective"] == "full_tier_latency"
        for alert in result["slo_alerts"]
    )
    overhead = result["seconds_taps"] / result["seconds_baseline"]
    artifact = result["artifact"]
    save_json(
        "quality_monitor",
        {
            "requests": result["requests"],
            "responses_identical": result["responses_identical"],
            "seconds_baseline": round(result["seconds_baseline"], 4),
            "seconds_monitored": round(result["seconds_monitored"], 4),
            "seconds_taps": round(result["seconds_taps"], 5),
            "tap_events": result["tap_events"],
            "overhead": round(overhead, 4),
            "max_overhead": MAX_OVERHEAD,
            "event_counts": artifact["counts"],
            "firing_slo_alerts": sorted(
                {alert["objective"] for alert in result["slo_alerts"]}
            ),
            "recorder": {
                "capacity": artifact["recorder"]["capacity"],
                "recorded": artifact["recorder"]["recorded"],
                "dropped": artifact["recorder"]["dropped"],
            },
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"monitoring overhead {overhead:.1%} (tap replay vs baseline) "
        f"exceeds {MAX_OVERHEAD:.0%}"
    )
