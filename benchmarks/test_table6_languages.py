"""Table VI — detailed accuracy for six languages (scenario2, θ=0.7).

Paper shape: precision 0.95-0.98, recall ~0.958 for every language,
FPR 0.0005-0.004, AUC ~0.997-0.999 — near-uniform across languages
(language independence).
"""

from repro.evaluation.reporting import format_table


def test_table6_languages(lab, benchmark, save_result):
    rows = benchmark.pedantic(lab.table6_rows, rounds=1, iterations=1)

    text = format_table(
        ["language", "precision", "recall", "f1", "fp_rate", "auc"],
        [[row["language"], row["precision"], row["recall"], row["f1"],
          row["fpr"], row["auc"]] for row in rows],
    )
    save_result("table6_languages", text)

    recalls = [row["recall"] for row in rows]
    for row in rows:
        # Shape: high accuracy, very low FPR, for every language.
        assert row["precision"] > 0.8, row
        assert row["recall"] > 0.85, row
        assert row["fpr"] < 0.02, row
        assert row["auc"] > 0.98, row
    # Language independence: recall is identical across languages (same
    # phishTest) and the FPR spread stays narrow.
    assert max(recalls) - min(recalls) < 1e-9
    fprs = [row["fpr"] for row in rows]
    assert max(fprs) - min(fprs) < 0.02
