"""Table VIII — processing time per pipeline stage (milliseconds).

Paper shape: scraping dominates wall-clock; everything after scraping
(data loading + feature extraction + classification) completes well
under a second per page, with feature extraction the biggest of the
three post-scraping stages.
"""

from repro.evaluation.reporting import format_table


def test_table8_timing(lab, benchmark, save_result):
    timing = benchmark.pedantic(
        lab.table8_timing, kwargs={"sample_size": 100}, rounds=1, iterations=1
    )

    text = format_table(
        ["stage", "median_ms", "average_ms", "std_ms"],
        [[stage, stats["median"], stats["average"], stats["std"]]
         for stage, stats in timing.items()],
    )
    save_result("table8_timing", text)

    # Classification in under a second per page (paper: total 891ms
    # median on 2015 hardware; our simulator is far faster).
    assert timing["total_no_scraping"]["median"] < 1000
    # Feature extraction dominates loading and classification.
    assert timing["features"]["median"] > timing["loading"]["median"]
    # Classification of a single vector is fast.
    assert timing["classification"]["median"] < 100
