"""Fig. 3 — precision vs recall per language.

Paper shape: at precision >= 0.9 every language keeps recall in the
0.64-0.98 band (the usability criterion of Section VI-C1).
"""

import numpy as np

from repro.evaluation.reporting import format_curve
from repro.ml.metrics import recall_at_precision


def test_fig3_precision_recall(lab, benchmark, save_result):
    curves = benchmark.pedantic(lab.fig3_curves, rounds=1, iterations=1)

    lines = []
    for language, (precision, recall) in curves.items():
        lines.append(format_curve(language, precision, recall))
    save_result("fig3_precision_recall", "\n".join(lines))

    for language in curves:
        y, scores = lab.scenario2_scores(language)
        usable_recall = recall_at_precision(y, scores, 0.9)
        assert usable_recall > 0.6, (
            f"{language}: recall {usable_recall} at precision 0.9"
        )
        precision, recall = curves[language]
        assert np.all((precision >= 0) & (precision <= 1))
        assert np.all((recall >= 0) & (recall <= 1))
